//! miniQMC-sim: the workload proxy for the paper's evaluation.
//!
//! §4 of the paper runs the ECP proxy application miniQMC (a simplified
//! real-space quantum Monte Carlo code) as MPI+OpenMP, in CPU-only and
//! OpenMP-target-offload variants. Only its *scheduling footprint*
//! matters to ZeroSum: per-walker compute blocks with small system-call
//! overhead, a leader serial section, per-block team barriers, and — in
//! the offload variant — kernel launches to one GCD per rank. This
//! module builds that footprint on the simulated node from the same
//! inputs the paper's runs used (`srun` arguments + OpenMP environment).

use zerosum_omp::{launch_team_process, OmpEnv, OmptRegistry, TeamInfo};
use zerosum_sched::launch::helper_mask;
use zerosum_sched::{plan_launch, Behavior, NodeSim, OffloadSpec, SrunConfig, WorkerSpec};
use zerosum_topology::Topology;

/// GPU offload settings of the target-offload variant.
#[derive(Debug, Clone)]
pub struct QmcOffload {
    /// Kernel-launch/transfer overhead (system time) per block, µs.
    pub launch_us: u64,
    /// Kernel time on the device per walker block, µs.
    pub kernel_us: u64,
    /// Post-kernel synchronization system time, µs.
    pub sync_us: u64,
    /// Device bytes touched per rank (spline tables + walkers).
    pub bytes: u64,
}

/// The miniQMC-sim configuration.
#[derive(Debug, Clone)]
pub struct MiniQmcConfig {
    /// Slurm launch parameters (`srun -n… -c…`).
    pub srun: SrunConfig,
    /// OpenMP environment (`OMP_NUM_THREADS`, `OMP_PROC_BIND`,
    /// `OMP_PLACES`).
    pub omp: OmpEnv,
    /// Number of QMC blocks (outer iterations with a team barrier each).
    pub blocks: u32,
    /// Mean walker compute per thread per block, µs.
    pub walker_work_us: u64,
    /// Relative walker-population noise (±).
    pub noise_frac: f64,
    /// System-call time per thread per block, µs.
    pub sys_per_block_us: u64,
    /// Serial (leader-only) work per block, µs.
    pub leader_serial_us: u64,
    /// Leader checkpoint cadence in blocks (0 = never) — periodic
    /// diagnostics/I-O whose long serial section makes waiting team
    /// members exhaust their spin budget and block.
    pub checkpoint_every: u32,
    /// Serial checkpoint work, µs.
    pub checkpoint_extra_us: u64,
    /// Resident set per rank, KiB.
    pub rss_kib: u64,
    /// GPU offload per block, when running the target-offload variant.
    pub offload: Option<QmcOffload>,
}

impl MiniQmcConfig {
    /// The paper's CPU-only Frontier runs (Tables 1–3): 8 ranks, 7
    /// OpenMP threads, ~700 blocks calibrated so the well-configured run
    /// (Table 2/3) takes ≈27 s of virtual time.
    pub fn frontier_cpu() -> Self {
        MiniQmcConfig {
            srun: SrunConfig {
                ntasks: 8,
                cpus_per_task: Some(7),
                threads_per_core: 1,
                reserve_first_core_per_l3: true,
                gpu_bind_closest: false,
            },
            omp: OmpEnv::from_pairs([("OMP_NUM_THREADS", "7")]).unwrap(),
            blocks: 700,
            walker_work_us: 35_000,
            noise_frac: 0.04,
            sys_per_block_us: 450,
            leader_serial_us: 2_500,
            checkpoint_every: 100,
            checkpoint_extra_us: 300_000,
            rss_kib: 2 * 1024 * 1024, // 2 GiB/rank
            offload: None,
        }
    }

    /// The Listing 2 GPU-offload run: 8 ranks × 4 threads, spread/cores,
    /// one MI250X GCD per rank via `--gpu-bind=closest`.
    pub fn frontier_offload() -> Self {
        MiniQmcConfig {
            srun: SrunConfig {
                ntasks: 8,
                cpus_per_task: Some(7),
                threads_per_core: 1,
                reserve_first_core_per_l3: true,
                gpu_bind_closest: true,
            },
            omp: OmpEnv::from_pairs([
                ("OMP_NUM_THREADS", "4"),
                ("OMP_PROC_BIND", "spread"),
                ("OMP_PLACES", "cores"),
            ])
            .unwrap(),
            blocks: 300,
            // Calibrated to Listing 2's per-core shares: ~64% user, ~12.5%
            // system, ~23% idle (GPU synchronization wait).
            walker_work_us: 64_000,
            noise_frac: 0.05,
            sys_per_block_us: 6_000,
            leader_serial_us: 1_000,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            rss_kib: 3 * 1024 * 1024,
            offload: Some(QmcOffload {
                launch_us: 6_500,
                kernel_us: 4_200,
                sync_us: 0,
                bytes: 4_839_596_032, // the Listing 2 VRAM peak
            }),
        }
    }

    /// Scales the workload down by `factor` (blocks divided) for fast
    /// tests while preserving per-block structure.
    pub fn scaled_down(mut self, factor: u32) -> Self {
        self.blocks = (self.blocks / factor).max(2);
        if self.checkpoint_every > 0 {
            // Keep ~7 checkpoints across the run and shrink each one so
            // the checkpoint share of the runtime stays constant.
            self.checkpoint_every = (self.blocks / 7).max(1);
            self.checkpoint_extra_us = (self.checkpoint_extra_us / factor as u64).max(1_000);
        }
        self
    }

    /// Expected busy team size per rank.
    pub fn team_size(&self) -> usize {
        self.omp.num_threads.unwrap_or(1)
    }
}

/// A launched miniQMC job.
#[derive(Debug)]
pub struct MiniQmcJob {
    /// Per-rank team info (pid + member tids + binding).
    pub teams: Vec<TeamInfo>,
    /// Per-rank assigned GPU physical index, if offloading.
    pub gpus: Vec<Option<u32>>,
}

/// Launches miniQMC-sim onto the node per the configuration. Each rank
/// becomes a process with its OpenMP team, plus an unbound MPI
/// progress-helper thread (the `Other` LWP of the paper's tables).
pub fn launch(
    sim: &mut NodeSim,
    topo: &Topology,
    cfg: &MiniQmcConfig,
    ompt: &mut OmptRegistry,
) -> Result<MiniQmcJob, zerosum_sched::launch::LaunchError> {
    let plan = plan_launch(topo, &cfg.srun)?;
    let wide = helper_mask(topo, &cfg.srun);
    let mut teams = Vec::new();
    let mut gpus = Vec::new();
    for placement in plan {
        let rank = placement.rank;
        let barrier_id = 1;
        let cfg2 = cfg.clone();
        let gpu = placement.gpu;
        let mk_spec = move |_thread: usize, is_leader: bool| WorkerSpec {
            iterations: cfg2.blocks,
            work_per_iter_us: cfg2.walker_work_us,
            noise_frac: cfg2.noise_frac,
            sys_per_iter_us: cfg2.sys_per_block_us,
            leader_extra_us: cfg2.leader_serial_us,
            checkpoint_every: cfg2.checkpoint_every,
            checkpoint_extra_us: cfg2.checkpoint_extra_us,
            is_leader,
            barrier: Some(barrier_id),
            offload: cfg2.offload.as_ref().map(|o| OffloadSpec {
                device: gpu.unwrap_or(0),
                launch_us: o.launch_us,
                kernel_us: o.kernel_us,
                sync_us: o.sync_us,
                bytes: o.bytes,
            }),
        };
        let team = launch_team_process(
            sim,
            "miniqmc",
            placement.cpus_allowed.clone(),
            cfg.rss_kib,
            &cfg.omp,
            mk_spec,
            ompt,
        );
        sim.set_rank(team.pid, rank);
        // The MPI progress helper: unbound, nearly idle (the ‡ LWP).
        sim.spawn_task(
            team.pid,
            "cxi-helper",
            Some(wide.clone()),
            Behavior::helper_poll(500_000, 200),
            true,
        );
        teams.push(team);
        gpus.push(placement.gpu);
    }
    Ok(MiniQmcJob { teams, gpus })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_sched::SchedParams;
    use zerosum_topology::presets;

    fn tiny_cpu_cfg() -> MiniQmcConfig {
        let mut cfg = MiniQmcConfig::frontier_cpu().scaled_down(100);
        cfg.walker_work_us = 3_000;
        cfg.leader_serial_us = 300;
        cfg
    }

    #[test]
    fn launch_creates_ranks_teams_and_helpers() {
        let topo = presets::frontier();
        let mut sim = NodeSim::new(topo.clone(), SchedParams::default());
        let mut ompt = OmptRegistry::new();
        let job = launch(&mut sim, &topo, &tiny_cpu_cfg(), &mut ompt).unwrap();
        assert_eq!(job.teams.len(), 8);
        // 7 team members per rank.
        assert_eq!(job.teams[0].tids.len(), 7);
        // Rank 0's process mask is cores 1-7.
        let p = sim.process(job.teams[0].pid).unwrap();
        assert_eq!(p.cpus_allowed.to_list_string(), "1-7");
        assert_eq!(p.rank, Some(0));
        // Helper thread exists with the wide mask (9 tasks total).
        assert_eq!(p.tasks.len(), 8);
        // No GPU in the CPU config.
        assert!(job.gpus.iter().all(|g| g.is_none()));
    }

    #[test]
    fn job_runs_to_completion() {
        let topo = presets::frontier();
        let mut sim = NodeSim::new(topo.clone(), SchedParams::default());
        let mut ompt = OmptRegistry::new();
        launch(&mut sim, &topo, &tiny_cpu_cfg(), &mut ompt).unwrap();
        let done = sim.run_until_apps_done(100_000, 120_000_000);
        assert!(done.is_some(), "miniqmc-sim must finish");
    }

    #[test]
    fn offload_config_assigns_closest_gcds() {
        let topo = presets::frontier();
        let mut sim = NodeSim::new(topo.clone(), SchedParams::default());
        let mut ompt = OmptRegistry::new();
        let mut cfg = MiniQmcConfig::frontier_offload().scaled_down(100);
        cfg.walker_work_us = 2_000;
        let job = launch(&mut sim, &topo, &cfg, &mut ompt).unwrap();
        // Figure 2 mapping: ranks 0,1 (NUMA 0) get GCDs 4,5; ranks 6,7 get 0,1.
        assert_eq!(job.gpus[0], Some(4));
        assert_eq!(job.gpus[1], Some(5));
        assert_eq!(job.gpus[6], Some(0));
        assert_eq!(job.gpus[7], Some(1));
        // Offload run completes and touches the GPUs.
        sim.run_until_apps_done(100_000, 300_000_000)
            .expect("offload run finishes");
        assert!(!sim.active_devices().is_empty());
    }

    #[test]
    fn table3_binding_pins_one_thread_per_core() {
        let topo = presets::frontier();
        let mut sim = NodeSim::new(topo.clone(), SchedParams::default());
        let mut ompt = OmptRegistry::new();
        let mut cfg = tiny_cpu_cfg();
        cfg.omp = OmpEnv::from_pairs([
            ("OMP_NUM_THREADS", "7"),
            ("OMP_PROC_BIND", "spread"),
            ("OMP_PLACES", "cores"),
        ])
        .unwrap();
        let job = launch(&mut sim, &topo, &cfg, &mut ompt).unwrap();
        let team = &job.teams[0];
        assert!(team.binding.bound);
        let masks: Vec<String> = team
            .binding
            .masks
            .iter()
            .map(|m| m.to_list_string())
            .collect();
        assert_eq!(masks, vec!["1", "2", "3", "4", "5", "6", "7"]);
    }
}
