//! # zerosum-stats
//!
//! Statistics utilities for ZeroSum-rs: streaming summaries (the
//! `min avg max` triplets of Listing 2's GPU report), Welch's t-test (the
//! §4.1 overhead comparison), time-series containers with CSV export
//! (§3.6, Figures 6–7), histograms/quartiles (Figure 8's runtime
//! distributions), and bounded ring buffers with downsample-on-wrap
//! (constant-memory series for multi-hour monitored runs).

#![warn(missing_docs)]

pub mod histogram;
pub mod ring;
pub mod summary;
pub mod timeseries;
pub mod ttest;

pub use histogram::{quartiles, Histogram, Quartiles};
pub use ring::{Ring, DEFAULT_SERIES_CAPACITY};
pub use summary::Summary;
pub use timeseries::{SeriesBundle, TimeSeries};
pub use ttest::{welch_t_test, welch_t_test_summaries, TTest};

// Property tests need the crates.io `proptest` crate; the container
// builds fully offline, so they are opt-in behind the no-op `proptests`
// feature (add `proptest` back to [dev-dependencies] to enable).
#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use crate::summary::Summary;
    use crate::ttest::{regularized_incomplete_beta, two_sided_p, welch_t_test};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn summary_mean_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::from_slice(&xs);
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
            prop_assert!(s.variance() >= 0.0);
        }

        #[test]
        fn summary_merge_associative(
            a in proptest::collection::vec(-1e3f64..1e3, 1..50),
            b in proptest::collection::vec(-1e3f64..1e3, 1..50),
        ) {
            let mut m = Summary::from_slice(&a);
            m.merge(&Summary::from_slice(&b));
            let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
            let whole = Summary::from_slice(&all);
            prop_assert!((m.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((m.variance() - whole.variance()).abs() < 1e-4);
        }

        #[test]
        fn incomplete_beta_monotone_in_x(
            a in 0.5f64..20.0,
            b in 0.5f64..20.0,
            x1 in 0.01f64..0.98,
            dx in 0.001f64..0.02,
        ) {
            let x2 = (x1 + dx).min(0.999);
            let v1 = regularized_incomplete_beta(a, b, x1);
            let v2 = regularized_incomplete_beta(a, b, x2);
            prop_assert!(v2 >= v1 - 1e-9, "I_x not monotone: {v1} > {v2}");
            prop_assert!((0.0..=1.0).contains(&v1));
        }

        #[test]
        fn p_value_shrinks_with_larger_t(t in 0.0f64..20.0, df in 1.0f64..200.0) {
            let p1 = two_sided_p(t, df);
            let p2 = two_sided_p(t + 1.0, df);
            prop_assert!(p2 <= p1 + 1e-9);
            prop_assert!((0.0..=1.0).contains(&p1));
        }

        #[test]
        fn welch_symmetry(
            a in proptest::collection::vec(0.0f64..100.0, 3..20),
            b in proptest::collection::vec(0.0f64..100.0, 3..20),
        ) {
            if let (Some(r1), Some(r2)) = (welch_t_test(&a, &b), welch_t_test(&b, &a)) {
                prop_assert!((r1.t + r2.t).abs() < 1e-9);
                prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
            }
        }
    }
}
