//! Streaming min/mean/max/variance summaries (Welford's algorithm).
//!
//! ZeroSum's GPU report (Listing 2) shows `min avg max` for every metric
//! collected over the run; the overhead study (Figure 8) needs means and
//! standard deviations of runtime distributions. `Summary` provides both
//! without storing samples.

/// A streaming summary of an observed metric.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Builds a summary from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Smallest observation (NaN-free input assumed); 0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn basic_stats() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        // Sample variance of that classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn merge_matches_combined() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(37);
        let mut s1 = Summary::from_slice(a);
        let s2 = Summary::from_slice(b);
        s1.merge(&s2);
        let whole = Summary::from_slice(&xs);
        assert_eq!(s1.count(), whole.count());
        assert!((s1.mean() - whole.mean()).abs() < 1e-9);
        assert!((s1.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(s1.min(), whole.min());
        assert_eq!(s1.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut s = Summary::from_slice(&[1.0, 2.0]);
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&Summary::from_slice(&[5.0]));
        assert_eq!(e.mean(), 5.0);
    }
}
