//! Welch's t-test, as used in §4.1 of the paper to compare miniQMC
//! runtime distributions with and without ZeroSum.
//!
//! The paper reports a "t-test score" of 0.998 (no significant
//! difference) for the one-thread-per-core case and 0.0006 (highly
//! significant) for two threads per core — those are two-sided p-values.
//! The Student-t CDF is computed from the regularized incomplete beta
//! function via its continued-fraction expansion (Lentz's algorithm); no
//! external statistics crate is needed.

use crate::summary::Summary;

/// Result of a two-sample Welch t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTest {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value: probability of a |t| at least this large under
    /// the null hypothesis that both samples share a mean.
    pub p_value: f64,
}

impl TTest {
    /// True if the difference is significant at level `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs Welch's unequal-variance t-test on two samples.
///
/// Returns `None` if either sample has fewer than two observations or
/// both variances are zero.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTest> {
    let sa = Summary::from_slice(a);
    let sb = Summary::from_slice(b);
    welch_t_test_summaries(&sa, &sb)
}

/// Welch's t-test from precomputed summaries.
pub fn welch_t_test_summaries(sa: &Summary, sb: &Summary) -> Option<TTest> {
    let (na, nb) = (sa.count() as f64, sb.count() as f64);
    if na < 2.0 || nb < 2.0 {
        return None;
    }
    let va = sa.variance() / na;
    let vb = sb.variance() / nb;
    let se2 = va + vb;
    if se2 == 0.0 {
        // Identical constant samples: no evidence of difference.
        return Some(TTest {
            t: 0.0,
            df: na + nb - 2.0,
            p_value: 1.0,
        });
    }
    let t = (sa.mean() - sb.mean()) / se2.sqrt();
    let df = se2 * se2 / (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
    let p_value = two_sided_p(t, df);
    Some(TTest { t, df, p_value })
}

/// Two-sided p-value for a t statistic with `df` degrees of freedom.
pub fn two_sided_p(t: f64, df: f64) -> f64 {
    // P(|T| > |t|) = I_{df/(df+t²)}(df/2, 1/2)
    let x = df / (df + t * t);
    regularized_incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// The regularized incomplete beta function `I_x(a, b)`.
///
/// Continued-fraction evaluation (Numerical Recipes §6.4, modified
/// Lentz), accurate to ~1e-12 over the domain used here.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g=7).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = regularized_incomplete_beta(2.5, 1.5, 0.3);
        let w = 1.0 - regularized_incomplete_beta(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-12);
        // I_x(1,1) = x (uniform)
        assert!((regularized_incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn t_distribution_p_values_match_tables() {
        // With df=10: P(|T| > 2.228) ≈ 0.05 (classic t-table value).
        let p = two_sided_p(2.228, 10.0);
        assert!((p - 0.05).abs() < 2e-3, "p = {p}");
        // With df=1 (Cauchy): P(|T| > 1) = 0.5.
        let p = two_sided_p(1.0, 1.0);
        assert!((p - 0.5).abs() < 1e-9, "p = {p}");
        // t = 0 ⇒ p = 1.
        assert!((two_sided_p(0.0, 7.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [27.31, 27.36, 27.35, 27.30, 27.38];
        let r = welch_t_test(&a, &a).unwrap();
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn clearly_different_samples_significant() {
        // The paper's Figure 8 two-threads-per-core scenario: baseline
        // ~57.07 ± 0.05, with ZeroSum ~57.34 ± 0.18.
        let baseline = [
            57.01, 57.03, 57.06, 57.08, 57.05, 57.10, 57.12, 57.04, 57.07, 57.09,
        ];
        let with_zs = [
            57.20, 57.28, 57.45, 57.60, 57.25, 57.31, 57.18, 57.55, 57.38, 57.22,
        ];
        let r = welch_t_test(&baseline, &with_zs).unwrap();
        assert!(r.significant(0.01), "p = {}", r.p_value);
        assert!(r.t < 0.0); // baseline mean is smaller
    }

    #[test]
    fn overlapping_samples_not_significant() {
        // Figure 8 one-thread-per-core: same mean, ZeroSum case noisier.
        let baseline = [
            27.30, 27.33, 27.36, 27.31, 27.35, 27.37, 27.32, 27.34, 27.36, 27.33,
        ];
        let with_zs = [
            27.20, 27.45, 27.28, 27.42, 27.31, 27.38, 27.25, 27.44, 27.30, 27.39,
        ];
        let r = welch_t_test(&baseline, &with_zs).unwrap();
        assert!(!r.significant(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
        assert!(welch_t_test(&[], &[]).is_none());
        // Constant equal samples.
        let r = welch_t_test(&[5.0, 5.0, 5.0], &[5.0, 5.0]).unwrap();
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn matches_reference_welch_example() {
        // Reference example computed with scipy.stats.ttest_ind
        // (equal_var=False): a=[3,4,5,6,7], b=[1,2,3,4,5] ⇒
        // t=2.0, df=8, p≈0.0805.
        let r = welch_t_test(&[3.0, 4.0, 5.0, 6.0, 7.0], &[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!((r.t - 2.0).abs() < 1e-12);
        assert!((r.df - 8.0).abs() < 1e-9);
        assert!((r.p_value - 0.080_51).abs() < 1e-3, "p = {}", r.p_value);
    }
}
