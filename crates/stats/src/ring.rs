//! Bounded time-series storage with downsample-on-wrap.
//!
//! A multi-hour monitored run at 1 Hz accumulates tens of thousands of
//! samples per LWP; storing them in plain `Vec`s makes the monitor's own
//! RSS grow without bound — exactly the failure mode a resource monitor
//! must not have. [`Ring`] is a drop-in replacement: it behaves like a
//! `Vec` (it derefs to `&[T]`, so `.len()`, `.last()`, `.windows()`,
//! indexing and iteration all work) up to a fixed capacity, and when the
//! capacity is reached it *downsamples 2:1 in place*, keeping every
//! other sample starting from the first. The series therefore always
//! contains the first sample ever pushed, the most recent sample, and a
//! progressively coarser — but still time-ordered — view of the middle.
//!
//! This is the classic "thin the history" policy of long-running
//! monitors: constant memory, graceful loss of temporal resolution, no
//! reallocation after the first fill.

use std::ops::Deref;

/// A fixed-capacity series that halves its resolution when full.
///
/// Pushing into a full ring compacts the existing contents by keeping
/// the elements at even indices (`0, 2, 4, …`) — preserving the first
/// element and monotone ordering — and then appends the new element.
/// A ring of capacity 0 discards every push; capacity 1 keeps only the
/// most recent element.
#[derive(Debug, Clone, PartialEq)]
pub struct Ring<T> {
    items: Vec<T>,
    capacity: usize,
    /// Number of 2:1 compactions performed so far.
    wraps: u32,
    /// Total elements ever pushed (including ones compacted away).
    pushed: u64,
}

/// Default capacity for monitor time series: at 1 Hz this holds over an
/// hour at full resolution and a multi-day run at progressively coarser
/// resolution, in a few hundred KiB per series.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

impl<T> Ring<T> {
    /// Creates an empty ring with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Ring {
            // `items` never exceeds `capacity`; reserve lazily so empty
            // rings (e.g. for never-sampled CPUs) cost nothing.
            items: Vec::new(),
            capacity,
            wraps: 0,
            pushed: 0,
        }
    }

    /// Creates an empty ring with [`DEFAULT_SERIES_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SERIES_CAPACITY)
    }

    /// The fixed capacity; `len()` never exceeds this.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of 2:1 downsample compactions performed so far.
    pub fn wraps(&self) -> u32 {
        self.wraps
    }

    /// Total number of elements ever pushed, including those compacted
    /// away by downsampling.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Appends an element, compacting 2:1 first if the ring is full.
    pub fn push(&mut self, value: T) {
        self.pushed += 1;
        if self.capacity == 0 {
            return;
        }
        if self.items.len() >= self.capacity {
            if self.capacity == 1 {
                self.items.clear();
            } else {
                // Keep even indices: first element survives, order is
                // preserved, length halves (rounding up).
                let mut keep = 0usize;
                for i in (0..self.items.len()).step_by(2) {
                    self.items.swap(keep, i);
                    keep += 1;
                }
                self.items.truncate(keep);
            }
            self.wraps += 1;
        }
        self.items.push(value);
    }

    /// The stored samples, oldest first.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Removes all elements, keeping the capacity.
    pub fn clear(&mut self) {
        self.items.clear();
        self.wraps = 0;
        self.pushed = 0;
    }
}

impl<T> Default for Ring<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Deref for Ring<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.items
    }
}

impl<'a, T> IntoIterator for &'a Ring<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<T> FromIterator<T> for Ring<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut ring = Ring::new();
        for v in iter {
            ring.push(v);
        }
        ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_vec_below_capacity() {
        let mut r: Ring<u32> = Ring::with_capacity(8);
        assert!(r.is_empty());
        for v in 0..5 {
            r.push(v);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.first(), Some(&0));
        assert_eq!(r.last(), Some(&4));
        assert_eq!(r[2], 2);
        assert_eq!(r.wraps(), 0);
        assert_eq!(r.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn capacity_zero_discards_everything() {
        let mut r: Ring<u32> = Ring::with_capacity(0);
        for v in 0..10 {
            r.push(v);
        }
        assert!(r.is_empty());
        assert_eq!(r.total_pushed(), 10);
    }

    #[test]
    fn capacity_one_keeps_latest() {
        let mut r: Ring<u32> = Ring::with_capacity(1);
        for v in 0..10 {
            r.push(v);
        }
        assert_eq!(r.as_slice(), &[9]);
        assert_eq!(r.wraps(), 9);
    }

    #[test]
    fn exact_wrap_halves_and_keeps_first() {
        let mut r: Ring<u32> = Ring::with_capacity(8);
        for v in 0..8 {
            r.push(v);
        }
        assert_eq!(r.len(), 8);
        // The 9th push triggers the compaction: evens survive, then 8.
        r.push(8);
        assert_eq!(r.as_slice(), &[0, 2, 4, 6, 8]);
        assert_eq!(r.wraps(), 1);
        assert_eq!(r.first(), Some(&0));
        assert_eq!(r.last(), Some(&8));
    }

    #[test]
    fn downsample_preserves_first_last_and_monotone_order() {
        // Push monotone "timestamps" far past several wraps; the ring
        // must stay sorted, start at the first sample, end at the
        // latest, and never exceed capacity.
        let cap = 16;
        let mut r: Ring<u64> = Ring::with_capacity(cap);
        for t in 0..1000u64 {
            r.push(t);
            assert!(r.len() <= cap);
            assert_eq!(r.first(), Some(&0), "first sample lost at t={t}");
            assert_eq!(r.last(), Some(&t), "latest sample missing at t={t}");
            assert!(
                r.windows(2).all(|w| w[0] < w[1]),
                "ordering broken at t={t}: {:?}",
                r.as_slice()
            );
        }
        assert!(r.wraps() > 1);
        assert_eq!(r.total_pushed(), 1000);
    }

    #[test]
    fn memory_stays_bounded_over_a_long_run() {
        let mut r: Ring<(f64, u64)> = Ring::with_capacity(64);
        for t in 0..100_000u64 {
            r.push((t as f64, t * 2));
        }
        assert!(r.len() <= 64);
        // The backing Vec never grows past one amortized doubling of the
        // ring capacity — constant memory regardless of run length.
        assert!(r.items.capacity() <= 128);
        assert_eq!(r.first().map(|s| s.1), Some(0));
        assert_eq!(r.last().map(|s| s.1), Some(99_999 * 2));
    }

    #[test]
    fn clear_resets_counters() {
        let mut r: Ring<u32> = Ring::with_capacity(2);
        for v in 0..5 {
            r.push(v);
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.wraps(), 0);
        assert_eq!(r.total_pushed(), 0);
    }

    #[test]
    fn from_iterator_collects() {
        let r: Ring<u32> = (0..5).collect();
        assert_eq!(r.as_slice(), &[0, 1, 2, 3, 4]);
    }
}
