//! Time-series storage for periodic samples.
//!
//! ZeroSum logs every periodic observation as CSV for post-hoc analysis
//! (§3.6); Figures 6 and 7 of the paper are stacked utilization series for
//! LWPs and hardware threads. `TimeSeries` is a compact column of
//! `(t, value)` points with the helpers those figures need: per-interval
//! deltas, stacking, and CSV export.

use std::fmt::Write as _;

/// A named series of `(time, value)` samples, time in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Series label (e.g. `"LWP 18592 user%"`).
    pub name: String,
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new(name: &str) -> Self {
        TimeSeries {
            name: name.to_string(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends a sample. Times must be non-decreasing.
    pub fn push(&mut self, t: f64, v: f64) {
        debug_assert!(
            self.times.last().map(|&last| t >= last).unwrap_or(true),
            "time went backwards"
        );
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The series of consecutive differences (len − 1 points, timestamped
    /// at the later sample): turns cumulative jiffy counters into
    /// per-interval utilization.
    pub fn deltas(&self) -> TimeSeries {
        let mut out = TimeSeries::new(&format!("Δ{}", self.name));
        for i in 1..self.len() {
            out.push(self.times[i], self.values[i] - self.values[i - 1]);
        }
        out
    }

    /// Centered moving average over a window of `w` samples (clamped at
    /// the edges) — the smoothing used when reading trends out of the
    /// noisy Figure 6 series.
    pub fn moving_average(&self, w: usize) -> TimeSeries {
        let mut out = TimeSeries::new(&format!("ma{w}({})", self.name));
        let half = w.max(1) / 2;
        for i in 0..self.len() {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(self.len());
            let mean = self.values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            out.push(self.times[i], mean);
        }
        out
    }

    /// Downsamples by averaging every `k` consecutive samples
    /// (timestamped at the bucket's last instant).
    pub fn downsample(&self, k: usize) -> TimeSeries {
        let k = k.max(1);
        let mut out = TimeSeries::new(&format!("ds{k}({})", self.name));
        let mut i = 0;
        while i < self.len() {
            let hi = (i + k).min(self.len());
            let mean = self.values[i..hi].iter().sum::<f64>() / (hi - i) as f64;
            out.push(self.times[hi - 1], mean);
            i = hi;
        }
        out
    }

    /// Maximum value, if any samples exist.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }
}

/// A bundle of aligned series (same sampling instants), e.g. the
/// user/system/idle components of one LWP for a stacked chart.
#[derive(Debug, Clone, Default)]
pub struct SeriesBundle {
    /// The member series.
    pub series: Vec<TimeSeries>,
}

impl SeriesBundle {
    /// An empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a series.
    pub fn push(&mut self, s: TimeSeries) {
        self.series.push(s);
    }

    /// Renders the bundle as CSV: `time,<name1>,<name2>,…` — the format
    /// ZeroSum's log files use for post-processing into Figures 6/7.
    ///
    /// All series must share their time column; rows are emitted up to
    /// the shortest series.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        let rows = self.series.iter().map(|s| s.len()).min().unwrap_or(0);
        for i in 0..rows {
            let t = self.series[0].times[i];
            write!(out, "{t:.3}").unwrap();
            for s in &self.series {
                write!(out, ",{:.4}", s.values[i]).unwrap();
            }
            out.push('\n');
        }
        out
    }

    /// Stacked values at each instant (row sums) — the envelope of a
    /// stacked chart; useful for asserting that utilization components
    /// sum to 100%.
    pub fn row_sums(&self) -> Vec<f64> {
        let rows = self.series.iter().map(|s| s.len()).min().unwrap_or(0);
        (0..rows)
            .map(|i| self.series.iter().map(|s| s.values[i]).sum())
            .collect()
    }

    /// Renders a stacked ASCII area chart (`height` rows × one column per
    /// sample, columns downsampled to at most `max_width`) — a terminal
    /// rendering of the paper's Figures 6/7. Each series fills with its
    /// own glyph, bottom-up, scaled so the tallest stack reaches the top.
    pub fn render_stacked_ascii(&self, max_width: usize, height: usize) -> String {
        const GLYPHS: &[char] = &['#', ':', '.', '%', '+', '*'];
        let rows = self.series.iter().map(|s| s.len()).min().unwrap_or(0);
        if rows == 0 || height == 0 {
            return String::new();
        }
        // Downsample columns.
        let k = rows.div_ceil(max_width.max(1));
        let cols: Vec<Vec<f64>> = (0..rows)
            .step_by(k)
            .map(|i| {
                let hi = (i + k).min(rows);
                self.series
                    .iter()
                    .map(|s| s.values[i..hi].iter().sum::<f64>() / (hi - i) as f64)
                    .collect()
            })
            .collect();
        let peak = cols
            .iter()
            .map(|c| c.iter().sum::<f64>())
            .fold(1e-12f64, f64::max);
        let mut grid = vec![vec![' '; cols.len()]; height];
        for (x, col) in cols.iter().enumerate() {
            let mut acc = 0.0;
            for (si, &v) in col.iter().enumerate() {
                let lo = (acc / peak * height as f64).round() as usize;
                acc += v;
                let hi = (acc / peak * height as f64).round() as usize;
                let glyph = GLYPHS[si % GLYPHS.len()];
                for y in lo..hi.min(height) {
                    grid[height - 1 - y][x] = glyph;
                }
            }
        }
        let mut out = String::new();
        for row in grid {
            out.push_str(&row.into_iter().collect::<String>());
            out.push('\n');
        }
        // Legend.
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("{} {}  ", GLYPHS[si % GLYPHS.len()], s.name));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new("x");
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        s.push(2.0, 6.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max(), Some(6.0));
        assert!(!s.is_empty());
    }

    #[test]
    fn deltas_turn_counters_into_rates() {
        let mut s = TimeSeries::new("utime");
        for (t, v) in [(0.0, 0.0), (1.0, 95.0), (2.0, 190.0), (3.0, 287.0)] {
            s.push(t, v);
        }
        let d = s.deltas();
        assert_eq!(d.len(), 3);
        assert_eq!(d.values(), &[95.0, 95.0, 97.0]);
        assert_eq!(d.times(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new("e");
        assert!(s.is_empty());
        assert_eq!(s.max(), None);
        assert_eq!(s.deltas().len(), 0);
    }

    #[test]
    fn moving_average_smooths_noise() {
        let mut s = TimeSeries::new("noisy");
        for i in 0..50 {
            // square wave around 50
            s.push(i as f64, if i % 2 == 0 { 40.0 } else { 60.0 });
        }
        let ma = s.moving_average(5);
        assert_eq!(ma.len(), 50);
        // Interior points collapse to near the mean.
        for i in 5..45 {
            assert!((ma.values()[i] - 50.0).abs() < 8.0, "i={i}");
        }
    }

    #[test]
    fn downsample_buckets_and_averages() {
        let mut s = TimeSeries::new("x");
        for i in 0..7 {
            s.push(i as f64, i as f64);
        }
        let d = s.downsample(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.values(), &[1.0, 4.0, 6.0]); // last bucket has 1 pt
        assert_eq!(d.times(), &[2.0, 5.0, 6.0]);
        // k=0 is clamped to 1 (identity).
        assert_eq!(s.downsample(0).len(), 7);
    }

    #[test]
    fn bundle_csv_format() {
        let mut a = TimeSeries::new("user");
        let mut b = TimeSeries::new("system");
        a.push(0.0, 90.0);
        a.push(1.0, 92.0);
        b.push(0.0, 8.0);
        b.push(1.0, 6.0);
        let mut bundle = SeriesBundle::new();
        bundle.push(a);
        bundle.push(b);
        let csv = bundle.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,user,system");
        assert_eq!(lines[1], "0.000,90.0000,8.0000");
        assert_eq!(lines[2], "1.000,92.0000,6.0000");
    }

    #[test]
    fn stacked_ascii_fills_proportionally() {
        let mut bundle = SeriesBundle::new();
        for (name, v) in [("user", 75.0), ("system", 25.0)] {
            let mut s = TimeSeries::new(name);
            for t in 0..20 {
                s.push(t as f64, v);
            }
            bundle.push(s);
        }
        let art = bundle.render_stacked_ascii(20, 8);
        let rows: Vec<&str> = art.lines().collect();
        // 8 chart rows + legend.
        assert_eq!(rows.len(), 9);
        // Bottom 6 rows are user (#), top 2 are system (:).
        assert!(rows[7].chars().all(|c| c == '#'));
        assert!(rows[0].chars().all(|c| c == ':'));
        assert!(rows.last().unwrap().contains("# user"));
        // Empty bundle renders empty.
        assert_eq!(SeriesBundle::new().render_stacked_ascii(10, 5), "");
    }

    #[test]
    fn row_sums_for_stacking() {
        let mut bundle = SeriesBundle::new();
        for (name, vals) in [
            ("u", [60.0, 70.0]),
            ("s", [10.0, 12.0]),
            ("i", [30.0, 18.0]),
        ] {
            let mut s = TimeSeries::new(name);
            s.push(0.0, vals[0]);
            s.push(1.0, vals[1]);
            bundle.push(s);
        }
        assert_eq!(bundle.row_sums(), vec![100.0, 100.0]);
    }
}
