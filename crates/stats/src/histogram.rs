//! Fixed-bin histograms for runtime distributions (Figure 8's box-plot
//! style comparison) and ASCII rendering for terminal reports.

/// A histogram over `[lo, hi)` with equal-width bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `nbins` bins.
    ///
    /// # Panics
    /// If `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total in-range observations.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Renders an ASCII bar chart, one row per bin.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!(
                "{:>10.4} | {:<width$} {}\n",
                self.bin_center(i),
                bar,
                c
            ));
        }
        out
    }
}

/// Quartile summary (min, q1, median, q3, max) for box-plot style
/// comparisons like Figure 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quartiles {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes quartiles (linear interpolation). Returns `None` on empty
/// input.
pub fn quartiles(xs: &[f64]) -> Option<Quartiles> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quartiles input"));
    let q = |p: f64| -> f64 {
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    };
    Some(Quartiles {
        min: v[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: v[v.len() - 1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.9, 9.99] {
            h.push(x);
        }
        h.push(-1.0);
        h.push(10.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_has_rows() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 0.6, 1.5, 2.5, 2.6, 2.7] {
            h.push(x);
        }
        let art = h.render_ascii(20);
        assert_eq!(art.lines().count(), 4);
        assert!(art.contains('#'));
    }

    #[test]
    fn quartiles_odd_and_even() {
        let q = quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(q.median, 3.0);
        assert_eq!(q.q1, 2.0);
        assert_eq!(q.q3, 4.0);
        assert_eq!((q.min, q.max), (1.0, 5.0));
        let q = quartiles(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(q.median, 2.5);
        assert!(quartiles(&[]).is_none());
    }
}
