//! The collector daemon core: drives [`ClusterMonitor`] supervision
//! rounds off frames received over any set of [`Link`]s.
//!
//! The collector is deliberately passive and bounded. Per round it
//! drains each node's link into a per-connection reassembly buffer and
//! decodes at most [`CollectorConfig::max_frames_per_node_per_round`]
//! frames from it — one babbling or stuck node can neither stall the
//! round nor starve its neighbours. A connection whose buffer exceeds
//! [`CollectorConfig::max_buffered_bytes`] stops being read until it
//! drains, which fills the sender's bounded window and pushes the
//! backpressure to the agent — whose overload discipline sheds per-LWP
//! detail first, never heartbeats.
//!
//! Corrupt input can only *lose* data, never wedge the daemon: any
//! non-`Incomplete` decode error counts, drops the connection's buffer
//! (frames re-align at the next queue boundary), and moves on. The
//! decode path is registered as a panic-reachability audit root, so
//! this loop is statically panic-free.
//!
//! Liveness is silence-based: a node in reconnect backoff simply stops
//! heartbeating and the existing Alive→Suspect→Dead machine does the
//! rest — connection state never grows a parallel state machine.
//! Heartbeats are judged against the expected time *of the round they
//! carry*, so a network-delayed frame does not masquerade as clock
//! skew.

use crate::frame::{decode_frame, encode_frame, DecodeError, Frame};
use crate::transport::{Link, SendStatus};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use zerosum_core::{ClusterMonitor, NodeAggregate};

/// Bounds and timing knobs of the collector loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectorConfig {
    /// Decode budget per connection per round.
    pub max_frames_per_node_per_round: usize,
    /// Reassembly-buffer cap per connection; a connection over the cap
    /// is not read until it drains (backpressure to the agent).
    pub max_buffered_bytes: usize,
    /// Monitoring period, seconds — maps a heartbeat's round number to
    /// its expected sample time for clock-skew judgement.
    pub period_s: f64,
    /// Pumps a connection may sit on the *same* incomplete head frame
    /// before its buffer is dropped. A corrupted length prefix whose
    /// magic and version survived intact claims a plausible giant
    /// frame that will never complete; this deadline unwedges the
    /// stream (the sender retransmits anything that mattered).
    pub max_header_stalls: u32,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            max_frames_per_node_per_round: 64,
            max_buffered_bytes: 256 * 1024,
            period_s: 0.1,
            max_header_stalls: 8,
        }
    }
}

/// Everything the collector counted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Frames decoded successfully.
    pub frames_rx: u64,
    /// Hello frames.
    pub hellos_rx: u64,
    /// Heartbeat frames.
    pub heartbeats_rx: u64,
    /// Per-LWP detail frames.
    pub details_rx: u64,
    /// Aggregate frames.
    pub aggregates_rx: u64,
    /// Bye frames.
    pub byes_rx: u64,
    /// Acks sent.
    pub acks_tx: u64,
    /// Acks the ack window refused (the agent retransmits).
    pub acks_dropped: u64,
    /// Corrupt frames rejected by the decoder.
    pub decode_errors: u64,
    /// Buffer drops forced by decode errors.
    pub resyncs: u64,
    /// Frames needing a hostname that arrived before any Hello.
    pub orphan_frames: u64,
    /// Reads skipped because a connection buffer was over its cap.
    pub throttled_reads: u64,
    /// Frame-budget exhaustions (a node had more frames than one
    /// round's decode budget).
    pub budget_exhausted: u64,
    /// Buffers dropped by the header-stall deadline (a phantom frame
    /// head that never completed).
    pub header_timeouts: u64,
}

/// One node connection: its link, reassembly buffer, and identity.
struct NodeConn {
    link: Box<dyn Link>,
    buf: Vec<u8>,
    hostname: Option<String>,
    scratch: Vec<u8>,
    /// Consecutive pumps spent on the same undecodable buffer head.
    stalled: u32,
}

/// The collector daemon state. Owns the supervision-side
/// [`ClusterMonitor`] and the per-node aggregates delivered so far.
pub struct Collector {
    cluster: ClusterMonitor,
    conns: Vec<NodeConn>,
    /// Latest aggregate per hostname: `(round, aggregate)`.
    aggs: BTreeMap<String, (u64, NodeAggregate)>,
    /// Collector configuration.
    pub cfg: CollectorConfig,
    /// Counters.
    pub stats: CollectorStats,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// An empty collector with default bounds.
    pub fn new() -> Self {
        Collector::with_config(CollectorConfig::default())
    }

    /// An empty collector with explicit bounds.
    pub fn with_config(cfg: CollectorConfig) -> Self {
        Collector {
            cluster: ClusterMonitor::new(),
            conns: Vec::new(),
            aggs: BTreeMap::new(),
            cfg,
            stats: CollectorStats::default(),
        }
    }

    /// Registers a node for supervision before (or whether or not) it
    /// ever says Hello — a node whose Hello is lost forever must still
    /// be declared DEAD, not forgotten.
    pub fn expect_node(&mut self, hostname: &str) {
        self.cluster.register_node(hostname);
    }

    /// Adds a node connection.
    pub fn add_link(&mut self, link: Box<dyn Link>) {
        self.conns.push(NodeConn {
            link,
            buf: Vec::new(),
            hostname: None,
            scratch: Vec::new(),
            stalled: 0,
        });
    }

    /// The supervision-side cluster view.
    pub fn cluster(&self) -> &ClusterMonitor {
        &self.cluster
    }

    /// Aggregates delivered over the wire so far, ordered by hostname.
    pub fn wire_aggregates(&self) -> Vec<NodeAggregate> {
        self.aggs.values().map(|(_, a)| a.clone()).collect()
    }

    /// Drives one supervision round: pump frames, then close the round
    /// against the heartbeat deadline.
    pub fn run_round(&mut self) {
        self.cluster.begin_round();
        self.pump_frames();
        self.cluster.end_round();
    }

    /// `(quorum, total)` of the supervised node set.
    pub fn quorum(&self) -> (usize, usize) {
        self.cluster.quorum()
    }

    /// Drains every connection and dispatches up to the per-node frame
    /// budget. Also used bare during the end-of-run drain, when no
    /// more supervision rounds are being opened.
    pub fn pump_frames(&mut self) {
        let budget = self.cfg.max_frames_per_node_per_round;
        let cap = self.cfg.max_buffered_bytes;
        let period_s = self.cfg.period_s;
        for conn in &mut self.conns {
            conn.link.tick();
            if conn.buf.len() >= cap {
                self.stats.throttled_reads += 1;
            } else {
                // A down link is simply silence; reconnects are the
                // agent's job and death is the deadline's job.
                let _ = conn.link.recv_bytes(&mut conn.buf);
            }
            let mut used = 0usize;
            let mut consumed = 0usize;
            loop {
                if used >= budget {
                    self.stats.budget_exhausted += 1;
                    break;
                }
                let decoded = {
                    let rest = conn.buf.get(consumed..).unwrap_or(&[]);
                    if rest.is_empty() {
                        break;
                    }
                    decode_frame(rest)
                };
                match decoded {
                    Ok((frame, n)) => {
                        consumed += n;
                        used += 1;
                        self.stats.frames_rx += 1;
                        dispatch_frame(
                            &mut self.cluster,
                            &mut self.aggs,
                            &mut self.stats,
                            conn,
                            period_s,
                            frame,
                        );
                    }
                    Err(DecodeError::Incomplete { .. }) => break,
                    Err(_) => {
                        // Corrupt at the head: drop the whole buffer.
                        // Upstream queues are frame-granular, so the
                        // stream re-aligns at the next arrival.
                        self.stats.decode_errors += 1;
                        self.stats.resyncs += 1;
                        consumed = conn.buf.len();
                        break;
                    }
                }
            }
            if consumed > 0 {
                conn.buf.drain(..consumed);
            }
            // Header-stall deadline: a non-empty buffer whose head made
            // no progress this pump is waiting on a frame tail. A real
            // tail arrives within a pump or two; a phantom one (length
            // prefix corrupted under an intact magic/version) never
            // does, so after the deadline the buffer is dropped and the
            // stream re-aligns at the next queue boundary.
            if consumed == 0 && used == 0 && !conn.buf.is_empty() {
                conn.stalled += 1;
                if conn.stalled >= self.cfg.max_header_stalls {
                    self.stats.header_timeouts += 1;
                    self.stats.resyncs += 1;
                    conn.buf.clear();
                    conn.stalled = 0;
                }
            } else {
                conn.stalled = 0;
            }
        }
    }

    /// Renders the allocation summary from wire-delivered aggregates,
    /// with the supervision markers appended — the streamed counterpart
    /// of [`ClusterMonitor::render_summary`].
    pub fn render_summary(&self) -> String {
        let mut out = String::from("Allocation Summary (wire):\n");
        let aggs = self.wire_aggregates();
        writeln!(
            out,
            "{:<16} {:>5} {:>5} {:>8} {:>8} {:>12} {:>10}",
            "node", "ranks", "LWPs", "user%", "idle%", "nv_ctx", "RSS(GiB)"
        )
        .unwrap();
        for a in &aggs {
            writeln!(
                out,
                "{:<16} {:>5} {:>5} {:>8.2} {:>8.2} {:>12} {:>10.2}",
                a.hostname,
                a.ranks,
                a.lwps,
                a.mean_user_pct,
                a.mean_idle_pct,
                a.total_nvcsw,
                a.rss_kib as f64 / (1024.0 * 1024.0)
            )
            .unwrap();
        }
        let (k, n) = self.cluster.quorum();
        writeln!(
            out,
            "LIVE: {k}/{n} node(s), {} aggregate(s) delivered, {} heartbeat(s) received",
            aggs.len(),
            self.stats.heartbeats_rx
        )
        .unwrap();
        out.push_str(&self.cluster.render_markers());
        out
    }
}

/// Applies one decoded frame to the collector state. A free function
/// over split borrows so the pump loop can hold the connection and the
/// cluster mutably at once, with no indexing on the panic-audited path.
fn dispatch_frame(
    cluster: &mut ClusterMonitor,
    aggs: &mut BTreeMap<String, (u64, NodeAggregate)>,
    stats: &mut CollectorStats,
    conn: &mut NodeConn,
    period_s: f64,
    frame: Frame,
) {
    match frame {
        Frame::Hello { hostname } => {
            stats.hellos_rx += 1;
            cluster.register_node(hostname.clone());
            conn.hostname = Some(hostname);
            send_ack(conn, stats, 0);
        }
        Frame::Heartbeat { round, t_s } => {
            stats.heartbeats_rx += 1;
            // Judge skew against the expected time of the round the
            // heartbeat *claims*, so network delay is not skew.
            let expected = round as f64 * period_s;
            match conn.hostname.clone() {
                Some(host) => cluster.heartbeat_at(&host, t_s, expected),
                None => stats.orphan_frames += 1,
            }
        }
        Frame::LwpDetail { .. } => {
            stats.details_rx += 1;
        }
        Frame::Aggregate { round, agg } => {
            stats.aggregates_rx += 1;
            // Aggregates carry their own identity and are idempotent:
            // a retransmit overwrites with equal data.
            cluster.register_node(agg.hostname.clone());
            aggs.insert(agg.hostname.clone(), (round, agg));
            send_ack(conn, stats, round);
        }
        Frame::Bye => {
            stats.byes_rx += 1;
        }
        // Acks are collector → node; one arriving here is just noise
        // from a confused peer, already counted in frames_rx.
        Frame::Ack { .. } => {}
    }
}

/// Sends an ack; a refused or failed send is fine — the agent
/// retransmits whatever the ack covered.
fn send_ack(conn: &mut NodeConn, stats: &mut CollectorStats, round: u64) {
    conn.scratch.clear();
    if encode_frame(&Frame::Ack { round }, &mut conn.scratch).is_err() {
        return;
    }
    match conn.link.send_bytes(&conn.scratch) {
        Ok(SendStatus::Sent) => stats.acks_tx += 1,
        Ok(SendStatus::WindowFull) | Err(_) => stats.acks_dropped += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::NodeAgent;
    use crate::frame::frame_bytes;
    use crate::transport::{in_proc_pair, Link};
    use zerosum_core::NodeState;

    fn agg(host: &str) -> NodeAggregate {
        NodeAggregate {
            hostname: host.to_string(),
            ranks: 1,
            lwps: 2,
            mean_user_pct: 90.5,
            mean_idle_pct: 8.25,
            total_nvcsw: 42,
            rss_kib: 1024,
        }
    }

    #[test]
    fn hello_heartbeat_aggregate_flow_end_to_end() {
        let (agent_end, coll_end) = in_proc_pair(8);
        let mut collector = Collector::new();
        collector.expect_node("node-a");
        collector.add_link(Box::new(coll_end));
        let mut agent = NodeAgent::new(agent_end, "node-a");
        for r in 1..=4u64 {
            agent.begin_round(r, r as f64 * 0.1);
            collector.run_round();
            // Tick after the round so the Hello ack is consumed before
            // the next round opens.
            agent.tick();
        }
        assert_eq!(collector.quorum(), (1, 1));
        assert_eq!(collector.cluster().node_state("node-a"), NodeState::Alive);
        assert_eq!(collector.stats.heartbeats_rx, 4);
        assert_eq!(collector.stats.hellos_rx, 1, "hello acked, sent once");
        agent.finish(4, agg("node-a"));
        for _ in 0..8 {
            agent.tick();
            collector.pump_frames();
        }
        assert!(agent.done());
        assert_eq!(collector.wire_aggregates(), vec![agg("node-a")]);
        let summary = collector.render_summary();
        assert!(summary.contains("node-a"), "{summary}");
        assert!(!summary.contains("DEGRADED"), "{summary}");
    }

    #[test]
    fn silent_node_is_declared_dead_and_summary_says_so() {
        let (_agent_end, coll_end) = in_proc_pair(8);
        let mut collector = Collector::new();
        collector.expect_node("ghost");
        collector.add_link(Box::new(coll_end));
        for _ in 0..5 {
            collector.run_round();
        }
        assert_eq!(collector.cluster().node_state("ghost"), NodeState::Dead);
        assert_eq!(collector.quorum(), (0, 1));
        let s = collector.render_summary();
        assert!(s.contains("DEGRADED (0/1 nodes)"), "{s}");
        assert!(s.contains("DEAD: node ghost"), "{s}");
    }

    #[test]
    fn corrupt_bytes_count_and_resync_instead_of_wedging() {
        let (mut raw, coll_end) = in_proc_pair(8);
        let mut collector = Collector::new();
        collector.add_link(Box::new(coll_end));
        // A garbage blob with a plausible length prefix.
        let mut evil = 9u32.to_be_bytes().to_vec();
        evil.extend_from_slice(b"XXXXXXXXX");
        raw.send_bytes(&evil).unwrap();
        // A valid frame behind it in the same queue.
        raw.send_bytes(
            &frame_bytes(&Frame::Hello {
                hostname: "n".into(),
            })
            .unwrap(),
        )
        .unwrap();
        collector.run_round();
        assert_eq!(collector.stats.decode_errors, 1);
        assert_eq!(collector.stats.resyncs, 1);
        // The resync dropped the buffer — including the good frame that
        // shared it — but the *next* arrival decodes cleanly.
        raw.send_bytes(
            &frame_bytes(&Frame::Hello {
                hostname: "n".into(),
            })
            .unwrap(),
        )
        .unwrap();
        collector.run_round();
        assert_eq!(collector.stats.hellos_rx, 1);
    }

    #[test]
    fn corrupted_length_prefix_cannot_wedge_the_stream() {
        let (mut raw, coll_end) = in_proc_pair(64);
        let mut collector = Collector::new();
        collector.add_link(Box::new(coll_end));
        // A frame whose length prefix was inflated in flight but whose
        // magic and version survived: it claims kilobytes that will
        // never arrive, so the head can never complete.
        let good = frame_bytes(&Frame::Heartbeat { round: 1, t_s: 0.1 }).unwrap();
        let inflated = ((good.len() - 4 + 4_000) as u32).to_be_bytes();
        let mut evil: Vec<u8> = inflated.to_vec();
        evil.extend_from_slice(good.get(4..).unwrap_or(&[]));
        raw.send_bytes(&evil).unwrap();
        // An intact frame queued behind the phantom head.
        raw.send_bytes(
            &frame_bytes(&Frame::Hello {
                hostname: "n".into(),
            })
            .unwrap(),
        )
        .unwrap();
        for _ in 0..CollectorConfig::default().max_header_stalls {
            collector.pump_frames();
            assert_eq!(collector.stats.hellos_rx, 0, "wedged behind the phantom");
        }
        assert_eq!(collector.stats.header_timeouts, 1, "deadline fired");
        // The stream re-aligned: the next arrival decodes cleanly.
        raw.send_bytes(
            &frame_bytes(&Frame::Hello {
                hostname: "n".into(),
            })
            .unwrap(),
        )
        .unwrap();
        collector.pump_frames();
        assert_eq!(collector.stats.hellos_rx, 1);
    }

    #[test]
    fn orphan_heartbeats_are_counted_not_attributed() {
        let (mut raw, coll_end) = in_proc_pair(8);
        let mut collector = Collector::new();
        collector.expect_node("n");
        collector.add_link(Box::new(coll_end));
        raw.send_bytes(&frame_bytes(&Frame::Heartbeat { round: 1, t_s: 0.1 }).unwrap())
            .unwrap();
        collector.run_round();
        assert_eq!(collector.stats.orphan_frames, 1);
        assert_eq!(collector.stats.heartbeats_rx, 1);
        // No hello ⇒ no attribution ⇒ the deadline still counts down.
        for _ in 0..4 {
            collector.run_round();
        }
        assert_eq!(collector.cluster().node_state("n"), NodeState::Dead);
    }

    #[test]
    fn frame_budget_bounds_one_round_of_a_babbling_node() {
        let (mut raw, coll_end) = in_proc_pair(1024);
        let mut collector = Collector::with_config(CollectorConfig {
            max_frames_per_node_per_round: 8,
            ..CollectorConfig::default()
        });
        collector.add_link(Box::new(coll_end));
        let beat = frame_bytes(&Frame::LwpDetail {
            round: 1,
            tid: 1,
            busy_pct: 1.0,
        })
        .unwrap();
        for _ in 0..20 {
            raw.send_bytes(&beat).unwrap();
        }
        collector.run_round();
        assert_eq!(collector.stats.frames_rx, 8, "budget caps the round");
        assert_eq!(collector.stats.budget_exhausted, 1);
        collector.run_round();
        collector.run_round();
        assert_eq!(collector.stats.frames_rx, 20, "backlog drains later");
    }
}
