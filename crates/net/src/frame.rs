//! The ZeroSum wire protocol: length-prefixed, versioned binary frames.
//!
//! Every frame on the wire is `u32` big-endian payload length followed
//! by the payload: a 2-byte magic (`ZS`), a `u16` protocol version, a
//! `u32` FNV-1a checksum over the rest of the payload, a one-byte tag,
//! and the tag's fields. Integers are big-endian and fixed-width;
//! floats travel as their IEEE-754 bit patterns ([`f64::to_bits`]), so
//! a decoded aggregate is *bit-identical* to the encoded one — the
//! property the lossy-transport differential suite checks. Strings are
//! `u16` length + UTF-8 bytes.
//!
//! The checksum is load-bearing for the survivor differential: without
//! it, a single flipped byte inside an `f64` field would decode as a
//! valid-but-wrong aggregate and silently poison the allocation
//! summary. FNV-1a's byte mixing is invertible, so any single-byte
//! substitution is guaranteed to change the digest.
//!
//! The decoder is the collector's hostile-input boundary: frames arrive
//! truncated, corrupted, version-skewed, or cut mid-stream, and every
//! such shape must come back as a typed [`DecodeError`] — never a
//! panic. `decode_frame` is a panic-reachability audit root, so a
//! regression that introduces an `unwrap` or a raw slice index on this
//! path fails `zerosum audit`.

use std::fmt;
use zerosum_core::NodeAggregate;

/// Current protocol version. Bump deliberately: the golden fixtures
/// under `tests/fixtures/net/` pin the encoding byte-for-byte.
pub const PROTOCOL_VERSION: u16 = 1;

/// Leading magic bytes of every payload.
pub const MAGIC: [u8; 2] = *b"ZS";

/// Upper bound on a payload, bytes. A length prefix beyond this is a
/// corrupt or hostile frame, rejected before any allocation.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Bytes of the length prefix preceding every payload.
pub const LEN_PREFIX: usize = 4;

/// Payload bytes before the checksummed region: magic (2) + version
/// (2) + checksum (4).
const CHECK_START: usize = 8;

/// FNV-1a 32-bit over `bytes` — the frame integrity digest.
pub(crate) fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Frame tags, one per [`Frame`] variant.
mod tag {
    pub const HELLO: u8 = 1;
    pub const HEARTBEAT: u8 = 2;
    pub const LWP_DETAIL: u8 = 3;
    pub const AGGREGATE: u8 = 4;
    pub const ACK: u8 = 5;
    pub const BYE: u8 = 6;
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Node → collector: opens (or re-opens, after a reconnect) a
    /// stream. Retransmitted every round until the collector answers
    /// with `Ack { round: 0 }`, so a dropped Hello cannot orphan a
    /// node's heartbeats.
    Hello {
        /// The sending node's hostname — the supervision key.
        hostname: String,
    },
    /// Node → collector: one liveness beat per monitoring round.
    Heartbeat {
        /// 1-based monitoring round on the sending node.
        round: u64,
        /// The node's reported sample time, seconds. Clock skew shows
        /// up as deviation from the collector's expected round time.
        t_s: f64,
    },
    /// Node → collector: per-LWP detail. The first thing an agent
    /// sheds when its send window fills — losing detail degrades the
    /// view, losing heartbeats kills the node.
    LwpDetail {
        /// Monitoring round the sample belongs to.
        round: u64,
        /// Thread id.
        tid: u32,
        /// Busy percentage over the round.
        busy_pct: f64,
    },
    /// Node → collector: the node's allocation-summary aggregate.
    /// Retransmitted until acked — this is the frame the survivor
    /// differential must deliver bit-identically.
    Aggregate {
        /// Final monitoring round the aggregate covers.
        round: u64,
        /// The per-node aggregate, exactly as computed node-side.
        agg: NodeAggregate,
    },
    /// Collector → node: acknowledges the Hello (`round == 0`) or an
    /// `Aggregate` up to and including `round`.
    Ack {
        /// 0 for Hello, else the acked aggregate round.
        round: u64,
    },
    /// Node → collector: clean shutdown.
    Bye,
}

impl Frame {
    /// Short frame-kind name for stats and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Heartbeat { .. } => "heartbeat",
            Frame::LwpDetail { .. } => "lwp-detail",
            Frame::Aggregate { .. } => "aggregate",
            Frame::Ack { .. } => "ack",
            Frame::Bye => "bye",
        }
    }
}

/// A frame that could not be encoded (a field exceeds its wire width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A string field is longer than its `u16` length prefix allows.
    FieldTooLong {
        /// The offending field.
        field: &'static str,
        /// Its byte length.
        len: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::FieldTooLong { field, len } => {
                write!(f, "field {field} is {len} bytes (max {})", u16::MAX)
            }
        }
    }
}

/// Why a byte buffer failed to decode as a frame. `Incomplete` means
/// the stream does not yet hold a whole frame (keep reading); every
/// other variant marks the buffer corrupt at its current position, and
/// a stream decoder should resynchronize by dropping it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Not enough bytes buffered yet: `need` total to proceed.
    Incomplete {
        /// Bytes available.
        have: usize,
        /// Bytes required before decoding can continue.
        need: usize,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    TooLong {
        /// The claimed payload length.
        len: usize,
    },
    /// The payload does not start with [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 2],
    },
    /// The frame's protocol version is not [`PROTOCOL_VERSION`].
    UnsupportedVersion {
        /// The version found on the wire.
        found: u16,
    },
    /// The payload checksum does not match — corruption in flight.
    BadChecksum {
        /// The digest the frame carries.
        carried: u32,
        /// The digest of the bytes as received.
        computed: u32,
    },
    /// Unknown frame tag.
    UnknownTag {
        /// The tag byte found.
        tag: u8,
    },
    /// The payload ended inside `field` — a truncated or corrupt frame.
    Truncated {
        /// The field being read when the payload ran out.
        field: &'static str,
    },
    /// The payload holds bytes past the end of the frame body.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A string field is not valid UTF-8.
    BadUtf8 {
        /// The offending field.
        field: &'static str,
    },
}

impl DecodeError {
    /// True when the error only means "keep reading" in a stream
    /// context; false marks real corruption.
    pub fn is_incomplete(&self) -> bool {
        matches!(self, DecodeError::Incomplete { .. })
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Incomplete { have, need } => {
                write!(f, "incomplete frame: have {have} of {need} bytes")
            }
            DecodeError::TooLong { len } => {
                write!(f, "payload length {len} exceeds {MAX_PAYLOAD}")
            }
            DecodeError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (want {MAGIC:?})")
            }
            DecodeError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (speak {PROTOCOL_VERSION})"
                )
            }
            DecodeError::BadChecksum { carried, computed } => {
                write!(f, "checksum mismatch: frame carries {carried:#010x}, bytes hash to {computed:#010x}")
            }
            DecodeError::UnknownTag { tag } => write!(f, "unknown frame tag {tag}"),
            DecodeError::Truncated { field } => write!(f, "payload truncated inside {field}"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after frame body")
            }
            DecodeError::BadUtf8 { field } => write!(f, "field {field} is not valid UTF-8"),
        }
    }
}

/// Appends the wire form of `frame` (length prefix included) to `out`.
/// The only failure is a string field too long for its length prefix.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    let start = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    // Checksum placeholder, patched below once tag + body are written.
    out.extend_from_slice(&[0, 0, 0, 0]);
    match frame {
        Frame::Hello { hostname } => {
            out.push(tag::HELLO);
            put_str(out, "hostname", hostname)?;
        }
        Frame::Heartbeat { round, t_s } => {
            out.push(tag::HEARTBEAT);
            out.extend_from_slice(&round.to_be_bytes());
            out.extend_from_slice(&t_s.to_bits().to_be_bytes());
        }
        Frame::LwpDetail {
            round,
            tid,
            busy_pct,
        } => {
            out.push(tag::LWP_DETAIL);
            out.extend_from_slice(&round.to_be_bytes());
            out.extend_from_slice(&tid.to_be_bytes());
            out.extend_from_slice(&busy_pct.to_bits().to_be_bytes());
        }
        Frame::Aggregate { round, agg } => {
            out.push(tag::AGGREGATE);
            out.extend_from_slice(&round.to_be_bytes());
            put_str(out, "agg.hostname", &agg.hostname)?;
            out.extend_from_slice(&(agg.ranks as u64).to_be_bytes());
            out.extend_from_slice(&(agg.lwps as u64).to_be_bytes());
            out.extend_from_slice(&agg.mean_user_pct.to_bits().to_be_bytes());
            out.extend_from_slice(&agg.mean_idle_pct.to_bits().to_be_bytes());
            out.extend_from_slice(&agg.total_nvcsw.to_be_bytes());
            out.extend_from_slice(&agg.rss_kib.to_be_bytes());
        }
        Frame::Ack { round } => {
            out.push(tag::ACK);
            out.extend_from_slice(&round.to_be_bytes());
        }
        Frame::Bye => out.push(tag::BYE),
    }
    let payload_len = out.len() - start - LEN_PREFIX;
    // Payloads are bounded by the u16 string caps above, far below u32.
    let len_bytes = (payload_len as u32).to_be_bytes();
    if let Some(dst) = out.get_mut(start..start + LEN_PREFIX) {
        dst.copy_from_slice(&len_bytes);
    }
    let body_start = start + LEN_PREFIX + CHECK_START;
    let check = fnv1a(out.get(body_start..).unwrap_or(&[])).to_be_bytes();
    if let Some(dst) = out.get_mut(start + LEN_PREFIX + 4..body_start) {
        dst.copy_from_slice(&check);
    }
    Ok(())
}

fn put_str(out: &mut Vec<u8>, field: &'static str, s: &str) -> Result<(), EncodeError> {
    let len = s.len();
    let Ok(len16) = u16::try_from(len) else {
        return Err(EncodeError::FieldTooLong { field, len });
    };
    out.extend_from_slice(&len16.to_be_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// The wire bytes of one frame — a fresh buffer per call; transports
/// reuse scratch buffers via [`encode_frame`] instead.
pub fn frame_bytes(frame: &Frame) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::new();
    encode_frame(frame, &mut out)?;
    Ok(out)
}

/// Bounded cursor over exactly one payload. Every read is checked; a
/// read past the end is a typed [`DecodeError::Truncated`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], DecodeError> {
        match self.buf.get(self.pos..).and_then(|rest| rest.get(..n)) {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => Err(DecodeError::Truncated { field }),
        }
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, DecodeError> {
        Ok(*self.take(1, field)?.first().unwrap_or(&0))
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, DecodeError> {
        let b = self.take(2, field)?;
        match <[u8; 2]>::try_from(b) {
            Ok(a) => Ok(u16::from_be_bytes(a)),
            Err(_) => Err(DecodeError::Truncated { field }),
        }
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, field)?;
        match <[u8; 4]>::try_from(b) {
            Ok(a) => Ok(u32::from_be_bytes(a)),
            Err(_) => Err(DecodeError::Truncated { field }),
        }
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, field)?;
        match <[u8; 8]>::try_from(b) {
            Ok(a) => Ok(u64::from_be_bytes(a)),
            Err(_) => Err(DecodeError::Truncated { field }),
        }
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64(field)?))
    }

    fn string(&mut self, field: &'static str) -> Result<String, DecodeError> {
        let len = self.u16(field)? as usize;
        let bytes = self.take(len, field)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(DecodeError::BadUtf8 { field }),
        }
    }
}

/// Decodes the first frame in `buf`. On success, returns the frame and
/// the total bytes consumed (length prefix included) so a stream
/// decoder can advance. [`DecodeError::Incomplete`] means more bytes
/// are needed; every other error marks the buffer corrupt.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), DecodeError> {
    let Some(len_bytes) = buf.get(..LEN_PREFIX) else {
        return Err(DecodeError::Incomplete {
            have: buf.len(),
            need: LEN_PREFIX,
        });
    };
    let payload_len = match <[u8; 4]>::try_from(len_bytes) {
        Ok(a) => u32::from_be_bytes(a) as usize,
        Err(_) => {
            return Err(DecodeError::Incomplete {
                have: buf.len(),
                need: LEN_PREFIX,
            })
        }
    };
    if payload_len > MAX_PAYLOAD {
        return Err(DecodeError::TooLong { len: payload_len });
    }
    // Header sanity *before* trusting the length prefix: magic and
    // version sit right behind it, so they are judged as soon as their
    // bytes exist even while the payload is still arriving. Without
    // this, a corrupted length prefix can claim a plausible giant
    // frame and leave the stream waiting forever for bytes that will
    // never come — wedging every intact frame queued behind it.
    if let Some(magic) = buf.get(LEN_PREFIX..LEN_PREFIX + 2) {
        if magic != MAGIC {
            let mut found = [0u8; 2];
            for (dst, src) in found.iter_mut().zip(magic) {
                *dst = *src;
            }
            return Err(DecodeError::BadMagic { found });
        }
    }
    if let Some(vb) = buf.get(LEN_PREFIX + 2..LEN_PREFIX + 4) {
        if let Ok(a) = <[u8; 2]>::try_from(vb) {
            let version = u16::from_be_bytes(a);
            if version != PROTOCOL_VERSION {
                return Err(DecodeError::UnsupportedVersion { found: version });
            }
        }
    }
    let total = LEN_PREFIX + payload_len;
    let Some(payload) = buf.get(LEN_PREFIX..total) else {
        return Err(DecodeError::Incomplete {
            have: buf.len(),
            need: total,
        });
    };
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let magic = r.take(2, "magic")?;
    if magic != MAGIC {
        let mut found = [0u8; 2];
        for (dst, src) in found.iter_mut().zip(magic) {
            *dst = *src;
        }
        return Err(DecodeError::BadMagic { found });
    }
    let version = r.u16("version")?;
    if version != PROTOCOL_VERSION {
        return Err(DecodeError::UnsupportedVersion { found: version });
    }
    let carried = r.u32("checksum")?;
    let computed = fnv1a(payload.get(CHECK_START..).unwrap_or(&[]));
    if carried != computed {
        return Err(DecodeError::BadChecksum { carried, computed });
    }
    let tag = r.u8("tag")?;
    let frame = match tag {
        tag::HELLO => Frame::Hello {
            hostname: r.string("hostname")?,
        },
        tag::HEARTBEAT => Frame::Heartbeat {
            round: r.u64("round")?,
            t_s: r.f64("t_s")?,
        },
        tag::LWP_DETAIL => Frame::LwpDetail {
            round: r.u64("round")?,
            tid: r.u32("tid")?,
            busy_pct: r.f64("busy_pct")?,
        },
        tag::AGGREGATE => Frame::Aggregate {
            round: r.u64("round")?,
            agg: NodeAggregate {
                hostname: r.string("agg.hostname")?,
                ranks: r.u64("agg.ranks")? as usize,
                lwps: r.u64("agg.lwps")? as usize,
                mean_user_pct: r.f64("agg.mean_user_pct")?,
                mean_idle_pct: r.f64("agg.mean_idle_pct")?,
                total_nvcsw: r.u64("agg.total_nvcsw")?,
                rss_kib: r.u64("agg.rss_kib")?,
            },
        },
        tag::ACK => Frame::Ack {
            round: r.u64("round")?,
        },
        tag::BYE => Frame::Bye,
        other => return Err(DecodeError::UnknownTag { tag: other }),
    };
    if r.pos != payload.len() {
        return Err(DecodeError::TrailingBytes {
            extra: payload.len() - r.pos,
        });
    }
    Ok((frame, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                hostname: "node01".into(),
            },
            Frame::Heartbeat { round: 7, t_s: 0.7 },
            Frame::LwpDetail {
                round: 7,
                tid: 4242,
                busy_pct: 93.25,
            },
            Frame::Aggregate {
                round: 24,
                agg: NodeAggregate {
                    hostname: "node01".into(),
                    ranks: 2,
                    lwps: 9,
                    mean_user_pct: 87.125,
                    mean_idle_pct: 11.5,
                    total_nvcsw: 123_456,
                    rss_kib: 7_654_321,
                },
            },
            Frame::Ack { round: 24 },
            Frame::Bye,
        ]
    }

    #[test]
    fn every_frame_round_trips_bit_identically() {
        for frame in sample_frames() {
            let bytes = frame_bytes(&frame).unwrap();
            let (decoded, used) = decode_frame(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, frame);
            // Float fields travel as bit patterns: re-encoding the
            // decoded frame reproduces the exact bytes.
            assert_eq!(frame_bytes(&decoded).unwrap(), bytes);
        }
    }

    #[test]
    fn frames_decode_back_to_back_from_one_buffer() {
        let mut buf = Vec::new();
        let frames = sample_frames();
        for f in &frames {
            encode_frame(f, &mut buf).unwrap();
        }
        let mut consumed = 0;
        let mut decoded = Vec::new();
        while consumed < buf.len() {
            let (f, n) = decode_frame(&buf[consumed..]).unwrap();
            decoded.push(f);
            consumed += n;
        }
        assert_eq!(decoded, frames);
    }

    #[test]
    fn every_prefix_is_a_typed_error_never_a_panic() {
        for frame in sample_frames() {
            let bytes = frame_bytes(&frame).unwrap();
            for cut in 0..bytes.len() {
                match decode_frame(&bytes[..cut]) {
                    Ok(_) => panic!("prefix of {} decoded", frame.kind()),
                    Err(e) => assert!(
                        e.is_incomplete() || matches!(e, DecodeError::Truncated { .. }),
                        "{}[..{cut}]: unexpected {e}",
                        frame.kind()
                    ),
                }
            }
        }
    }

    #[test]
    fn version_skew_and_bad_magic_are_typed() {
        let mut bytes = frame_bytes(&Frame::Bye).unwrap();
        bytes[LEN_PREFIX + 2] = 0xEE; // version hi byte
        assert!(matches!(
            decode_frame(&bytes),
            Err(DecodeError::UnsupportedVersion { found: 0xEE01 })
        ));
        let mut bytes = frame_bytes(&Frame::Bye).unwrap();
        bytes[LEN_PREFIX] = b'X';
        assert!(matches!(
            decode_frame(&bytes),
            Err(DecodeError::BadMagic {
                found: [b'X', b'S']
            })
        ));
    }

    #[test]
    fn header_faults_are_judged_before_the_payload_completes() {
        // A length prefix inflated in flight claims bytes that will
        // never arrive — but if magic or version got mangled too, the
        // decoder must say so *now*, not wait on the phantom payload.
        let good = frame_bytes(&Frame::Heartbeat { round: 7, t_s: 0.7 }).unwrap();
        let phantom = |head: &[u8]| {
            let mut b = 40_000u32.to_be_bytes().to_vec();
            b.extend_from_slice(head);
            b
        };
        let mut bad_magic = good.get(LEN_PREFIX..).unwrap().to_vec();
        if let Some(m) = bad_magic.first_mut() {
            *m = b'Q';
        }
        assert!(matches!(
            decode_frame(&phantom(&bad_magic)),
            Err(DecodeError::BadMagic {
                found: [b'Q', b'S']
            })
        ));
        let mut skewed = good.get(LEN_PREFIX..).unwrap().to_vec();
        if let Some(v) = skewed.get_mut(2) {
            *v = 0xEE;
        }
        assert!(matches!(
            decode_frame(&phantom(&skewed)),
            Err(DecodeError::UnsupportedVersion { found: 0xEE01 })
        ));
        // With an intact magic and version the decoder *must* keep
        // waiting (the bytes could legitimately still be in flight) —
        // unwedging that is the collector's header-stall deadline.
        let intact = good.get(LEN_PREFIX..).unwrap().to_vec();
        assert!(decode_frame(&phantom(&intact))
            .err()
            .is_some_and(|e| e.is_incomplete()));
    }

    /// Hand-assembles a wire frame with a *valid* checksum over an
    /// arbitrary tag + body, to probe the parse layer past the
    /// integrity gate.
    fn hand_frame(tag: u8, body: &[u8]) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&MAGIC);
        payload.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
        payload.extend_from_slice(&[0, 0, 0, 0]);
        payload.push(tag);
        payload.extend_from_slice(body);
        let check = fnv1a(&payload[CHECK_START..]).to_be_bytes();
        payload[4..8].copy_from_slice(&check);
        let mut out = (payload.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(&payload);
        out
    }

    #[test]
    fn hostile_lengths_and_tags_are_rejected() {
        // Length prefix claiming a giant payload.
        let huge = ((MAX_PAYLOAD + 1) as u32).to_be_bytes();
        assert!(matches!(
            decode_frame(&huge),
            Err(DecodeError::TooLong { .. })
        ));
        // Unknown tag (with a valid checksum, so the parse layer — not
        // the integrity gate — must reject it).
        assert!(matches!(
            decode_frame(&hand_frame(0x7F, &[])),
            Err(DecodeError::UnknownTag { tag: 0x7F })
        ));
        // Trailing garbage inside the declared (and checksummed) payload.
        let mut body = 1u64.to_be_bytes().to_vec();
        body.push(0xAA);
        assert!(matches!(
            decode_frame(&hand_frame(5, &body)),
            Err(DecodeError::TrailingBytes { extra: 1 })
        ));
        // Invalid UTF-8 in a hostname.
        assert!(matches!(
            decode_frame(&hand_frame(1, &[0, 2, 0xFF, 0xFE])),
            Err(DecodeError::BadUtf8 { .. })
        ));
        // A body that ends mid-field.
        assert!(matches!(
            decode_frame(&hand_frame(5, &[0, 0, 1])),
            Err(DecodeError::Truncated { field: "round" })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        for frame in sample_frames() {
            let bytes = frame_bytes(&frame).unwrap();
            for pos in 0..bytes.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    let mut evil = bytes.clone();
                    evil[pos] ^= flip;
                    let got = decode_frame(&evil);
                    assert!(
                        got.is_err(),
                        "{} byte {pos} ^ {flip:#x} decoded as {got:?}",
                        frame.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_string_fields_fail_to_encode() {
        let long = "h".repeat(usize::from(u16::MAX) + 1);
        let err = frame_bytes(&Frame::Hello { hostname: long }).unwrap_err();
        assert!(matches!(err, EncodeError::FieldTooLong { .. }));
        assert!(err.to_string().contains("hostname"));
    }
}
