//! The node-side streaming agent: one per monitored node, speaking the
//! wire protocol over any [`Link`].
//!
//! The agent is the active half of the failure model. It re-sends
//! Hello every round until the collector acks it (a lost Hello cannot
//! orphan a node's heartbeats forever), sends exactly one heartbeat
//! per round *before* any detail (liveness outranks detail under
//! backpressure — a full window sheds per-LWP detail, never the
//! heartbeat), and retransmits the end-of-run aggregate until acked.
//! A torn connection puts the agent into tick-counted exponential
//! backoff (initial 1 tick, doubling to a ceiling — mirroring the
//! supervision layer's dead-node re-probe schedule); during backoff it
//! sends nothing, so collector-side the outage is ordinary silence and
//! the Alive→Suspect→Dead machine needs no extra connection states.
//! Everything is tick-driven — no clocks — so the whole agent stays
//! inside the nondeterminism audit's det-reachable set.

use crate::frame::{decode_frame, encode_frame, DecodeError, Frame};
use crate::transport::{Link, SendStatus, TransportError};
use zerosum_core::NodeAggregate;

/// Retransmission and reconnect knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentConfig {
    /// Ticks between retransmissions of an unacked aggregate.
    pub retransmit_ticks: u32,
    /// First reconnect backoff, ticks.
    pub initial_backoff_ticks: u32,
    /// Backoff ceiling, ticks (doubles per failed attempt up to this).
    pub max_backoff_ticks: u32,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            retransmit_ticks: 2,
            initial_backoff_ticks: 1,
            max_backoff_ticks: 16,
        }
    }
}

/// Everything the agent counted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Frames handed to the link successfully.
    pub frames_tx: u64,
    /// Heartbeats sent.
    pub heartbeats_tx: u64,
    /// Per-LWP detail frames shed (window full or link down).
    pub details_shed: u64,
    /// Per-LWP detail frames sent.
    pub details_tx: u64,
    /// Successful reconnects after a tear.
    pub reconnects: u64,
    /// Failed reconnect attempts (each doubles the backoff).
    pub failed_connects: u64,
    /// Hello frames sent beyond the first (lost-Hello recovery).
    pub hello_retx: u64,
    /// Aggregate frames sent beyond the first.
    pub agg_retx: u64,
    /// Acks received.
    pub acks_rx: u64,
    /// Corrupt inbound frames (acks are retransmission-safe).
    pub decode_errors: u64,
}

/// Reconnect backoff: the agent is down and waiting.
#[derive(Debug, Clone, Copy)]
struct Backoff {
    /// Ticks until the next connect attempt.
    wait: u32,
    /// Current interval (doubles per failure, capped).
    interval: u32,
}

/// One node's streaming agent over a [`Link`].
#[derive(Debug)]
pub struct NodeAgent<L: Link> {
    link: L,
    hostname: String,
    cfg: AgentConfig,
    hello_acked: bool,
    hellos_sent: u64,
    /// The end-of-run aggregate awaiting delivery: `(round, agg)`.
    pending_agg: Option<(u64, NodeAggregate)>,
    agg_sends: u64,
    agg_acked: bool,
    ticks_since_agg_send: u32,
    backoff: Option<Backoff>,
    rx_buf: Vec<u8>,
    scratch: Vec<u8>,
    /// Counters.
    pub stats: AgentStats,
}

impl<L: Link> NodeAgent<L> {
    /// An agent for `hostname` over `link`, with default knobs.
    pub fn new(link: L, hostname: impl Into<String>) -> Self {
        NodeAgent::with_config(link, hostname, AgentConfig::default())
    }

    /// An agent with explicit knobs.
    pub fn with_config(link: L, hostname: impl Into<String>, cfg: AgentConfig) -> Self {
        NodeAgent {
            link,
            hostname: hostname.into(),
            cfg,
            hello_acked: false,
            hellos_sent: 0,
            pending_agg: None,
            agg_sends: 0,
            agg_acked: false,
            ticks_since_agg_send: 0,
            backoff: None,
            rx_buf: Vec::new(),
            scratch: Vec::new(),
            stats: AgentStats::default(),
        }
    }

    /// The underlying link.
    pub fn link(&self) -> &L {
        &self.link
    }

    /// True while the agent is in reconnect backoff (sending nothing).
    pub fn is_down(&self) -> bool {
        self.backoff.is_some()
    }

    /// True once the pending aggregate (if any) has been acked.
    pub fn done(&self) -> bool {
        self.pending_agg.is_none() || self.agg_acked
    }

    /// Opens round `round` (1-based): re-Hello if unacked, then the
    /// round's heartbeat stamped with the node's sample time `t_s`.
    pub fn begin_round(&mut self, round: u64, t_s: f64) {
        if self.backoff.is_some() {
            return;
        }
        if !self.hello_acked {
            let hello = Frame::Hello {
                hostname: self.hostname.clone(),
            };
            if self.send(&hello) == SendOutcome::Sent {
                if self.hellos_sent > 0 {
                    self.stats.hello_retx += 1;
                }
                self.hellos_sent += 1;
            }
            if self.backoff.is_some() {
                return;
            }
        }
        if self.send(&Frame::Heartbeat { round, t_s }) == SendOutcome::Sent {
            self.stats.heartbeats_tx += 1;
        }
    }

    /// Offers one per-LWP detail sample; shed (not queued, not
    /// retried) when the window is full or the link is down.
    pub fn send_detail(&mut self, round: u64, tid: u32, busy_pct: f64) {
        if self.backoff.is_some() {
            self.stats.details_shed += 1;
            return;
        }
        match self.send(&Frame::LwpDetail {
            round,
            tid,
            busy_pct,
        }) {
            SendOutcome::Sent => self.stats.details_tx += 1,
            SendOutcome::WindowFull | SendOutcome::Down => self.stats.details_shed += 1,
        }
    }

    /// Hands over the end-of-run aggregate; [`NodeAgent::tick`]
    /// transmits and retransmits it until the collector acks.
    pub fn finish(&mut self, round: u64, agg: NodeAggregate) {
        self.pending_agg = Some((round, agg));
        self.agg_acked = false;
        self.agg_sends = 0;
        // Send eagerly on the next tick.
        self.ticks_since_agg_send = self.cfg.retransmit_ticks;
    }

    /// Advances one tick: backoff countdown / reconnect attempt, link
    /// machinery, inbound acks, and aggregate (re)transmission.
    pub fn tick(&mut self) {
        if let Some(mut b) = self.backoff {
            b.wait = b.wait.saturating_sub(1);
            if b.wait > 0 {
                self.backoff = Some(b);
                return;
            }
            match self.link.connect() {
                Ok(()) => {
                    self.backoff = None;
                    self.stats.reconnects += 1;
                    // A reconnect is a new stream: the collector's view
                    // of this conn restarts at Hello.
                    self.hello_acked = false;
                    self.rx_buf.clear();
                }
                Err(_) => {
                    self.stats.failed_connects += 1;
                    b.interval = (b.interval * 2).min(self.cfg.max_backoff_ticks).max(1);
                    b.wait = b.interval;
                    self.backoff = Some(b);
                    return;
                }
            }
        }
        self.link.tick();
        self.pump_acks();
        if self.backoff.is_some() {
            return;
        }
        self.ticks_since_agg_send = self.ticks_since_agg_send.saturating_add(1);
        if self.agg_acked || self.ticks_since_agg_send < self.cfg.retransmit_ticks {
            return;
        }
        let frame = match &self.pending_agg {
            Some((round, agg)) => Frame::Aggregate {
                round: *round,
                agg: agg.clone(),
            },
            None => return,
        };
        if self.send(&frame) == SendOutcome::Sent {
            if self.agg_sends > 0 {
                self.stats.agg_retx += 1;
            }
            self.agg_sends += 1;
            self.ticks_since_agg_send = 0;
        }
    }

    /// Drains inbound acks.
    fn pump_acks(&mut self) {
        match self.link.recv_bytes(&mut self.rx_buf) {
            Ok(_) => {}
            Err(_) => {
                self.enter_backoff();
                return;
            }
        }
        let mut consumed = 0usize;
        loop {
            let decoded = {
                let rest = self.rx_buf.get(consumed..).unwrap_or(&[]);
                if rest.is_empty() {
                    break;
                }
                decode_frame(rest)
            };
            match decoded {
                Ok((frame, n)) => {
                    consumed += n;
                    if let Frame::Ack { round } = frame {
                        self.stats.acks_rx += 1;
                        if round == 0 {
                            self.hello_acked = true;
                        } else if self.pending_agg.as_ref().is_some_and(|(r, _)| *r == round) {
                            self.agg_acked = true;
                        }
                    }
                }
                Err(DecodeError::Incomplete { .. }) => break,
                Err(_) => {
                    self.stats.decode_errors += 1;
                    consumed = self.rx_buf.len();
                    break;
                }
            }
        }
        if consumed > 0 {
            self.rx_buf.drain(..consumed);
        }
    }

    /// Encodes and sends one frame, folding a tear into backoff.
    fn send(&mut self, frame: &Frame) -> SendOutcome {
        self.scratch.clear();
        if encode_frame(frame, &mut self.scratch).is_err() {
            return SendOutcome::Down;
        }
        match self.link.send_bytes(&self.scratch) {
            Ok(SendStatus::Sent) => {
                self.stats.frames_tx += 1;
                SendOutcome::Sent
            }
            Ok(SendStatus::WindowFull) => SendOutcome::WindowFull,
            Err(TransportError::Disconnected) | Err(TransportError::Io(_)) => {
                self.enter_backoff();
                SendOutcome::Down
            }
        }
    }

    fn enter_backoff(&mut self) {
        if self.backoff.is_none() {
            let interval = self.cfg.initial_backoff_ticks.max(1);
            self.backoff = Some(Backoff {
                wait: interval,
                interval,
            });
        }
        self.hello_acked = false;
    }
}

/// What happened to one offered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendOutcome {
    Sent,
    WindowFull,
    Down,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultyLink, LinkFaultPlan};
    use crate::frame::frame_bytes;
    use crate::transport::in_proc_pair;

    fn agg(host: &str, nvcsw: u64) -> NodeAggregate {
        NodeAggregate {
            hostname: host.to_string(),
            ranks: 1,
            lwps: 3,
            mean_user_pct: 77.0,
            mean_idle_pct: 20.0,
            total_nvcsw: nvcsw,
            rss_kib: 4096,
        }
    }

    #[test]
    fn heartbeat_outranks_detail_under_backpressure() {
        // Window of 2: hello + heartbeat fill it on round 1.
        let (agent_end, _coll_end) = in_proc_pair(2);
        let mut agent = NodeAgent::new(agent_end, "n");
        agent.begin_round(1, 0.1);
        for t in 0..4 {
            agent.send_detail(1, t, 50.0);
        }
        assert_eq!(agent.stats.heartbeats_tx, 1);
        assert_eq!(agent.stats.details_tx, 0);
        assert_eq!(agent.stats.details_shed, 4);
    }

    #[test]
    fn hello_is_resent_until_acked() {
        let (agent_end, mut coll_end) = in_proc_pair(8);
        let mut agent = NodeAgent::new(agent_end, "n");
        agent.begin_round(1, 0.1);
        agent.begin_round(2, 0.2);
        assert_eq!(agent.stats.hello_retx, 1, "no ack yet: hello resent");
        coll_end
            .send_bytes(&frame_bytes(&Frame::Ack { round: 0 }).unwrap())
            .unwrap();
        agent.tick();
        agent.begin_round(3, 0.3);
        assert_eq!(agent.stats.hello_retx, 1, "acked: no more hellos");
    }

    #[test]
    fn aggregate_retransmits_until_acked() {
        let (agent_end, mut coll_end) = in_proc_pair(8);
        let mut agent = NodeAgent::new(agent_end, "n");
        agent.finish(5, agg("n", 1));
        for _ in 0..6 {
            agent.tick();
        }
        assert!(!agent.done());
        assert!(agent.stats.agg_retx >= 1, "{:?}", agent.stats);
        // Drain what arrived and ack round 5.
        let mut sink = Vec::new();
        coll_end.recv_bytes(&mut sink).unwrap();
        coll_end
            .send_bytes(&frame_bytes(&Frame::Ack { round: 5 }).unwrap())
            .unwrap();
        agent.tick();
        assert!(agent.done());
        let before = agent.stats.agg_retx;
        for _ in 0..4 {
            agent.tick();
        }
        assert_eq!(agent.stats.agg_retx, before, "acked: no more sends");
    }

    #[test]
    fn tear_enters_backoff_and_reconnect_doubles_until_success() {
        let (agent_end, _coll) = in_proc_pair(8);
        // Kill at tick 1000 never fires; disconnect tears at frame 0.
        let faulty = FaultyLink::new(
            agent_end,
            LinkFaultPlan {
                seed: 8,
                disconnect_at: Some(0),
                ..Default::default()
            },
        );
        let mut agent = NodeAgent::new(faulty, "n");
        agent.begin_round(1, 0.1);
        assert!(agent.is_down(), "tear on first send enters backoff");
        // Round 2 while down: nothing sent, heartbeat silence.
        agent.begin_round(2, 0.2);
        assert_eq!(agent.stats.heartbeats_tx, 0);
        agent.tick(); // backoff expires → reconnect succeeds
        assert!(!agent.is_down());
        assert_eq!(agent.stats.reconnects, 1);
        agent.begin_round(3, 0.3);
        assert_eq!(agent.stats.heartbeats_tx, 1, "flow restored");
        // The torn Hello never reached the wire, so the post-reconnect
        // Hello is the first (and only) one actually sent.
        assert_eq!(agent.stats.hello_retx, 0);
        assert_eq!(agent.stats.frames_tx, 2, "hello + heartbeat");
    }

    #[test]
    fn permanently_killed_link_backs_off_exponentially_forever() {
        let (agent_end, _coll) = in_proc_pair(8);
        let faulty = FaultyLink::new(
            agent_end,
            LinkFaultPlan {
                seed: 8,
                kill_at: Some(1),
                ..Default::default()
            },
        );
        let mut agent = NodeAgent::new(faulty, "n");
        agent.tick(); // tick 1: kill fires
        agent.begin_round(1, 0.1); // send fails → backoff
        assert!(agent.is_down());
        for _ in 0..200 {
            agent.tick();
        }
        assert!(agent.is_down(), "a killed link never comes back");
        assert!(agent.stats.failed_connects >= 4);
        assert_eq!(agent.stats.reconnects, 0);
        // Backoff doubling is capped: 200 ticks at a 16-tick ceiling
        // means at least (200-31)/16 attempts but far fewer than 200.
        assert!(agent.stats.failed_connects < 40);
    }
}
