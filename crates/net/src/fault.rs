//! Seeded transport-level fault plans, in the `zerosum-proc::fault` /
//! `zerosum-sched::nodefault` style: a [`TransportFaultPlan`] is a pure
//! function of its seed, and [`FaultyLink`] applies one node's
//! [`LinkFaultPlan`] uniformly to *any* [`Link`] backend — the
//! in-process pipe and the TCP stream see exactly the same chaos.
//!
//! Faults operate on whole encoded frames at the sending endpoint:
//! drop, single-byte corruption (caught by the frame checksum),
//! truncation, tick-delayed delivery, reorder (hold one frame back
//! past its successor), a reconnectable mid-stream disconnect, a
//! two-way partition window (sends black-holed, half-open style), and
//! a permanent kill after which `connect` never succeeds again.

use crate::transport::{Link, SendStatus, TransportError};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// What happens to one node's link over a run. Percentages are per
/// outbound frame; ticks are the driver's [`Link::tick`] steps.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinkFaultPlan {
    /// Seed of this link's private fault stream.
    pub seed: u64,
    /// Chance an outbound frame silently vanishes, percent.
    pub drop_pct: u8,
    /// Chance a frame has one byte flipped in flight, percent.
    pub corrupt_pct: u8,
    /// Chance a frame loses its tail bytes in flight, percent.
    pub truncate_pct: u8,
    /// Chance a frame is held for [`LinkFaultPlan::delay_ticks`], percent.
    pub delay_pct: u8,
    /// How long a delayed frame is held, ticks.
    pub delay_ticks: u32,
    /// Chance a frame is delivered *after* its successor, percent.
    pub reorder_pct: u8,
    /// Outbound frame index at which the link tears down once
    /// (reconnectable — exercises the agent's backoff).
    pub disconnect_at: Option<u64>,
    /// Tick window `[start, end)` during which the link is partitioned:
    /// sends are black-holed (the sender still sees success — a
    /// half-open connection) and nothing is received.
    pub partition: Option<(u64, u64)>,
    /// Tick at which the link dies permanently: every send/recv fails
    /// and `connect` never succeeds again. The node must end DEAD.
    pub kill_at: Option<u64>,
}

impl LinkFaultPlan {
    /// A fault-free link.
    pub fn none() -> Self {
        LinkFaultPlan::default()
    }

    /// True if this plan injects any fault at all.
    pub fn is_faulty(&self) -> bool {
        *self != LinkFaultPlan::none()
    }

    /// True if the plan only loses or mangles frames — the node stays
    /// connected and must end the run alive with its aggregate
    /// delivered intact.
    pub fn is_lossy_only(&self) -> bool {
        self.is_faulty()
            && self.disconnect_at.is_none()
            && self.partition.is_none()
            && self.kill_at.is_none()
    }

    /// One-line human description for chaos reports.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.drop_pct > 0 {
            parts.push(format!("drop {}%", self.drop_pct));
        }
        if self.corrupt_pct > 0 {
            parts.push(format!("corrupt {}%", self.corrupt_pct));
        }
        if self.truncate_pct > 0 {
            parts.push(format!("truncate {}%", self.truncate_pct));
        }
        if self.delay_pct > 0 {
            parts.push(format!("delay {}%x{}t", self.delay_pct, self.delay_ticks));
        }
        if self.reorder_pct > 0 {
            parts.push(format!("reorder {}%", self.reorder_pct));
        }
        if let Some(at) = self.disconnect_at {
            parts.push(format!("disconnect@f{at}"));
        }
        if let Some((s, e)) = self.partition {
            parts.push(format!("partition@t{s}..{e}"));
        }
        if let Some(at) = self.kill_at {
            parts.push(format!("kill@t{at}"));
        }
        if parts.is_empty() {
            parts.push("clean".to_string());
        }
        parts.join(" ")
    }
}

/// A fault plan for every node link of an allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportFaultPlan {
    /// Per-node link plans, indexed like the node list.
    pub links: Vec<LinkFaultPlan>,
}

impl TransportFaultPlan {
    /// A plan with no faults on any link.
    pub fn clean(node_count: usize) -> Self {
        TransportFaultPlan {
            links: vec![LinkFaultPlan::none(); node_count],
        }
    }

    /// Generates a seeded plan over `node_count` links for a run of
    /// `rounds` rounds at `ticks_per_round` ticks each. Node 0 always
    /// has a clean link (the differential baseline), at least one other
    /// link is faulted whenever `node_count > 1`, and at most one link
    /// is killed so the quorum never collapses.
    pub fn generate(seed: u64, node_count: usize, rounds: u32, ticks_per_round: u64) -> Self {
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for _ in 0..3 {
            xorshift(&mut rng);
        }
        let total_ticks = u64::from(rounds) * ticks_per_round;
        let mut links = vec![LinkFaultPlan::none(); node_count];
        let mut any_fault = false;
        let mut killed = false;
        for (i, plan) in links.iter_mut().enumerate().skip(1) {
            plan.seed = xorshift(&mut rng) | 1;
            let force = !any_fault && i == node_count - 1;
            let draw = xorshift(&mut rng) % 100;
            // ~70% of links get a fault; the last link is forced when
            // nothing else was drawn so every generated plan is chaotic.
            if draw >= 70 && !force {
                continue;
            }
            any_fault = true;
            let mut kind = xorshift(&mut rng) % 4;
            if kind == 3 && killed {
                kind = 0;
            }
            match kind {
                0 => {
                    // Lossy link: every frame-level fault at once, at
                    // rates low enough that retransmission wins.
                    plan.drop_pct = 5 + (xorshift(&mut rng) % 20) as u8;
                    plan.corrupt_pct = 5 + (xorshift(&mut rng) % 15) as u8;
                    plan.truncate_pct = (xorshift(&mut rng) % 10) as u8;
                    plan.delay_pct = (xorshift(&mut rng) % 20) as u8;
                    plan.delay_ticks = 1 + (xorshift(&mut rng) % 6) as u32;
                    plan.reorder_pct = (xorshift(&mut rng) % 15) as u8;
                }
                1 => {
                    // One mid-stream disconnect: the agent must back
                    // off, reconnect, re-Hello, and retransmit.
                    let frames = u64::from(rounds).saturating_mul(3).max(4);
                    plan.disconnect_at = Some(2 + xorshift(&mut rng) % (frames / 2).max(1));
                    plan.drop_pct = (xorshift(&mut rng) % 10) as u8;
                }
                2 => {
                    // Partition long enough to cross the dead deadline,
                    // healed with enough run left to rejoin and deliver.
                    let span = total_ticks.max(8 * ticks_per_round);
                    let start = ticks_per_round + xorshift(&mut rng) % (span / 4).max(1);
                    let len = 5 * ticks_per_round + xorshift(&mut rng) % (span / 4).max(1);
                    let end = (start + len).min(total_ticks.saturating_sub(2 * ticks_per_round));
                    if end > start {
                        plan.partition = Some((start, end));
                    } else {
                        plan.drop_pct = 20;
                    }
                }
                _ => {
                    // Permanent kill, early enough that the collector
                    // declares the node dead before the run ends.
                    killed = true;
                    let latest = total_ticks.saturating_sub(6 * ticks_per_round).max(1);
                    plan.kill_at = Some(ticks_per_round + xorshift(&mut rng) % latest);
                }
            }
        }
        TransportFaultPlan { links }
    }

    /// Node indices whose links are never killed — the nodes whose
    /// wire-delivered aggregates must match the fault-free run exactly.
    pub fn survivors(&self) -> Vec<usize> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, p)| p.kill_at.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// One-line description of every link's plan.
    pub fn describe(&self) -> String {
        self.links
            .iter()
            .enumerate()
            .map(|(i, p)| format!("link{i}: {}", p.describe()))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// Counters of everything a [`FaultyLink`] did to the stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaultStats {
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames with a byte flipped.
    pub corrupted: u64,
    /// Frames with their tail cut off.
    pub truncated: u64,
    /// Frames held for later delivery.
    pub delayed: u64,
    /// Frames delivered after their successor.
    pub reordered: u64,
    /// Frames black-holed inside a partition window.
    pub partitioned: u64,
    /// Mid-stream disconnects injected.
    pub disconnects: u64,
    /// True once the permanent kill fired.
    pub killed: bool,
}

/// Wraps any [`Link`] endpoint and applies a [`LinkFaultPlan`] to its
/// outbound frames (and its connectivity). Deterministic: the same
/// plan over the same send/tick sequence produces the same chaos.
#[derive(Debug)]
pub struct FaultyLink<L: Link> {
    inner: L,
    plan: LinkFaultPlan,
    rng: u64,
    now_tick: u64,
    frames_offered: u64,
    /// Frames held by the delay fault: `(release_tick, bytes)`.
    held_delayed: Vec<(u64, Vec<u8>)>,
    /// Frame held back by the reorder fault.
    held_reorder: Option<Vec<u8>>,
    /// Whether the one-shot disconnect already fired.
    disconnect_done: bool,
    /// What the wrapper did so far.
    pub stats: LinkFaultStats,
}

impl<L: Link> FaultyLink<L> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: L, plan: LinkFaultPlan) -> Self {
        let mut rng = plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for _ in 0..3 {
            xorshift(&mut rng);
        }
        FaultyLink {
            inner,
            plan,
            rng,
            now_tick: 0,
            frames_offered: 0,
            held_delayed: Vec::new(),
            held_reorder: None,
            disconnect_done: false,
            stats: LinkFaultStats::default(),
        }
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    fn killed(&self) -> bool {
        self.plan.kill_at.is_some_and(|k| self.now_tick >= k)
    }

    fn partitioned(&self) -> bool {
        self.plan
            .partition
            .is_some_and(|(s, e)| self.now_tick >= s && self.now_tick < e)
    }

    fn roll(&mut self, pct: u8) -> bool {
        pct > 0 && xorshift(&mut self.rng) % 100 < u64::from(pct)
    }

    /// Pushes `bytes` through the inner link, parking it back in the
    /// reorder slot if the window is full.
    fn deliver_held(&mut self, bytes: Vec<u8>) {
        match self.inner.send_bytes(&bytes) {
            Ok(SendStatus::Sent) => {}
            Ok(SendStatus::WindowFull) => self.held_reorder = Some(bytes),
            Err(_) => {}
        }
    }
}

impl<L: Link> Link for FaultyLink<L> {
    fn send_bytes(&mut self, frame: &[u8]) -> Result<SendStatus, TransportError> {
        if self.killed() {
            self.inner.shutdown();
            return Err(TransportError::Disconnected);
        }
        let idx = self.frames_offered;
        self.frames_offered += 1;
        if !self.disconnect_done && self.plan.disconnect_at == Some(idx) {
            self.disconnect_done = true;
            self.stats.disconnects += 1;
            self.inner.shutdown();
            return Err(TransportError::Disconnected);
        }
        if self.partitioned() {
            // Half-open: the sender sees success, the frame is gone.
            self.stats.partitioned += 1;
            return Ok(SendStatus::Sent);
        }
        if self.roll(self.plan.drop_pct) {
            self.stats.dropped += 1;
            return Ok(SendStatus::Sent);
        }
        let mut bytes = frame.to_vec();
        if self.roll(self.plan.corrupt_pct) && !bytes.is_empty() {
            let pos = (xorshift(&mut self.rng) as usize) % bytes.len();
            if let Some(b) = bytes.get_mut(pos) {
                *b ^= 1 << (xorshift(&mut self.rng) % 8);
            }
            self.stats.corrupted += 1;
        }
        if self.roll(self.plan.truncate_pct) && bytes.len() > 1 {
            let cut = 1 + (xorshift(&mut self.rng) as usize) % (bytes.len() - 1);
            bytes.truncate(cut);
            self.stats.truncated += 1;
        }
        if self.roll(self.plan.delay_pct) {
            self.stats.delayed += 1;
            self.held_delayed
                .push((self.now_tick + u64::from(self.plan.delay_ticks), bytes));
            return Ok(SendStatus::Sent);
        }
        if self.roll(self.plan.reorder_pct) && self.held_reorder.is_none() {
            // Hold this frame back; it goes out after its successor.
            self.stats.reordered += 1;
            self.held_reorder = Some(bytes);
            return Ok(SendStatus::Sent);
        }
        let status = self.inner.send_bytes(&bytes)?;
        if let Some(held) = self.held_reorder.take() {
            self.deliver_held(held);
        }
        Ok(status)
    }

    fn recv_bytes(&mut self, buf: &mut Vec<u8>) -> Result<usize, TransportError> {
        if self.killed() {
            self.inner.shutdown();
            return Err(TransportError::Disconnected);
        }
        if self.partitioned() {
            return Ok(0);
        }
        self.inner.recv_bytes(buf)
    }

    fn tick(&mut self) {
        self.now_tick += 1;
        if self.killed() {
            if !self.stats.killed {
                self.stats.killed = true;
                self.inner.shutdown();
            }
            return;
        }
        self.inner.tick();
        if self.partitioned() {
            return;
        }
        if !self.held_delayed.is_empty() {
            let due = self.now_tick;
            let mut keep = Vec::new();
            for (release, bytes) in std::mem::take(&mut self.held_delayed) {
                if release <= due {
                    match self.inner.send_bytes(&bytes) {
                        Ok(SendStatus::Sent) | Err(_) => {}
                        Ok(SendStatus::WindowFull) => keep.push((release, bytes)),
                    }
                } else {
                    keep.push((release, bytes));
                }
            }
            self.held_delayed = keep;
        }
    }

    fn is_connected(&self) -> bool {
        !self.killed() && self.inner.is_connected()
    }

    fn connect(&mut self) -> Result<(), TransportError> {
        if self.killed() {
            return Err(TransportError::Disconnected);
        }
        self.held_delayed.clear();
        self.held_reorder = None;
        self.inner.connect()
    }

    fn shutdown(&mut self) {
        self.held_delayed.clear();
        self.held_reorder = None;
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::in_proc_pair;

    #[test]
    fn plan_generation_is_deterministic_and_node0_clean() {
        for seed in 0..40u64 {
            let a = TransportFaultPlan::generate(seed, 5, 24, 4);
            let b = TransportFaultPlan::generate(seed, 5, 24, 4);
            assert_eq!(a, b);
            assert!(!a.links[0].is_faulty(), "seed {seed}: link 0 faulted");
            assert!(
                a.links.iter().any(|p| p.is_faulty()),
                "seed {seed}: no faults"
            );
            let kills = a.links.iter().filter(|p| p.kill_at.is_some()).count();
            assert!(kills <= 1, "seed {seed}: {kills} kills");
            assert_eq!(a.survivors().len(), 5 - kills);
        }
    }

    #[test]
    fn dropped_frames_never_arrive() {
        let (a, mut b) = in_proc_pair(64);
        let mut faulty = FaultyLink::new(
            a,
            LinkFaultPlan {
                seed: 9,
                drop_pct: 100,
                ..Default::default()
            },
        );
        for _ in 0..10 {
            assert_eq!(faulty.send_bytes(b"x").unwrap(), SendStatus::Sent);
        }
        let mut got = Vec::new();
        assert_eq!(b.recv_bytes(&mut got).unwrap(), 0);
        assert_eq!(faulty.stats.dropped, 10);
    }

    #[test]
    fn corruption_changes_bytes_without_changing_length() {
        let (a, mut b) = in_proc_pair(64);
        let mut faulty = FaultyLink::new(
            a,
            LinkFaultPlan {
                seed: 3,
                corrupt_pct: 100,
                ..Default::default()
            },
        );
        faulty.send_bytes(b"hello-frame").unwrap();
        let mut got = Vec::new();
        b.recv_bytes(&mut got).unwrap();
        assert_eq!(got.len(), 11);
        assert_ne!(got, b"hello-frame");
        assert_eq!(faulty.stats.corrupted, 1);
    }

    #[test]
    fn delay_holds_frames_until_tick() {
        let (a, mut b) = in_proc_pair(64);
        let mut faulty = FaultyLink::new(
            a,
            LinkFaultPlan {
                seed: 5,
                delay_pct: 100,
                delay_ticks: 3,
                ..Default::default()
            },
        );
        faulty.send_bytes(b"late").unwrap();
        let mut got = Vec::new();
        assert_eq!(b.recv_bytes(&mut got).unwrap(), 0);
        for _ in 0..2 {
            faulty.tick();
        }
        assert_eq!(b.recv_bytes(&mut got).unwrap(), 0, "released too early");
        faulty.tick();
        assert_eq!(b.recv_bytes(&mut got).unwrap(), 4);
        assert_eq!(got, b"late");
    }

    #[test]
    fn reorder_swaps_adjacent_frames() {
        let (a, mut b) = in_proc_pair(64);
        let mut faulty = FaultyLink::new(
            a,
            LinkFaultPlan {
                seed: 1,
                reorder_pct: 100,
                ..Default::default()
            },
        );
        // First send is held; with the slot occupied, the second send
        // goes straight through and flushes the held frame after it.
        faulty.send_bytes(b"AA").unwrap();
        faulty.send_bytes(b"BB").unwrap();
        let mut got = Vec::new();
        b.recv_bytes(&mut got).unwrap();
        assert_eq!(got, b"BBAA");
    }

    #[test]
    fn disconnect_fires_once_and_reconnect_restores_flow() {
        let (a, mut b) = in_proc_pair(64);
        let mut faulty = FaultyLink::new(
            a,
            LinkFaultPlan {
                seed: 2,
                disconnect_at: Some(1),
                ..Default::default()
            },
        );
        assert_eq!(faulty.send_bytes(b"1").unwrap(), SendStatus::Sent);
        assert_eq!(faulty.send_bytes(b"2"), Err(TransportError::Disconnected));
        assert!(!faulty.is_connected());
        faulty.connect().unwrap();
        assert_eq!(faulty.send_bytes(b"3").unwrap(), SendStatus::Sent);
        let mut got = Vec::new();
        b.recv_bytes(&mut got).unwrap();
        // Frame 1 was lost to the tear; frame 3 arrives post-reconnect.
        assert_eq!(got, b"3");
        assert_eq!(faulty.stats.disconnects, 1);
    }

    #[test]
    fn partition_black_holes_both_directions_then_heals() {
        let (a, mut b) = in_proc_pair(64);
        let mut faulty = FaultyLink::new(
            a,
            LinkFaultPlan {
                seed: 4,
                partition: Some((1, 3)),
                ..Default::default()
            },
        );
        faulty.tick(); // tick 1: inside the window
        assert_eq!(faulty.send_bytes(b"gone").unwrap(), SendStatus::Sent);
        b.send_bytes(b"ack").unwrap();
        let mut got = Vec::new();
        assert_eq!(faulty.recv_bytes(&mut got).unwrap(), 0);
        faulty.tick();
        faulty.tick(); // tick 3: healed
        assert_eq!(faulty.send_bytes(b"back").unwrap(), SendStatus::Sent);
        let mut at_b = Vec::new();
        b.recv_bytes(&mut at_b).unwrap();
        assert_eq!(at_b, b"back");
        // The collector-side ack sent during the partition *is* still
        // queued in the pipe (the partition models the agent's NIC).
        assert!(faulty.recv_bytes(&mut got).unwrap() > 0);
        assert_eq!(faulty.stats.partitioned, 1);
    }

    #[test]
    fn kill_is_permanent() {
        let (a, _b) = in_proc_pair(64);
        let mut faulty = FaultyLink::new(
            a,
            LinkFaultPlan {
                seed: 6,
                kill_at: Some(2),
                ..Default::default()
            },
        );
        assert_eq!(faulty.send_bytes(b"1").unwrap(), SendStatus::Sent);
        faulty.tick();
        faulty.tick();
        assert!(!faulty.is_connected());
        assert_eq!(faulty.send_bytes(b"2"), Err(TransportError::Disconnected));
        assert_eq!(faulty.connect(), Err(TransportError::Disconnected));
        assert!(faulty.stats.killed);
    }
}
