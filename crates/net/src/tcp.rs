//! The real-socket [`Link`] backend: length-prefixed frames over a
//! non-blocking TCP stream.
//!
//! `TcpLink` mirrors the in-process backend's contract exactly: a
//! bounded send window (frames queued but not yet written to the
//! socket), `WindowFull` backpressure, and `Disconnected` on any tear
//! — so the same agent, collector, and [`crate::fault::FaultyLink`]
//! chaos wrapper run unchanged over loopback TCP. The implementation
//! is poll-driven and clock-free: *no* `Instant` reads and no sleeping
//! here (pacing belongs to the caller's loop), which keeps this
//! backend out of the nondeterminism audit's finding set even though
//! the call graph resolves `Link` methods to every backend.
//!
//! IO errors are stringified at this boundary ([`TransportError::Io`])
//! — raw `io::Error` sources never cross the net API.

use crate::transport::{Link, SendStatus, TransportError};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};

/// One TCP endpoint speaking the frame protocol.
#[derive(Debug)]
pub struct TcpLink {
    /// Redial target; `None` on accepted (collector-side) links, which
    /// cannot reconnect — a reconnecting agent shows up as a fresh
    /// accepted connection instead.
    addr: Option<String>,
    stream: Option<TcpStream>,
    /// Frames accepted into the send window but not fully written.
    pending: VecDeque<Vec<u8>>,
    /// Bytes of the front pending frame already written.
    head_off: usize,
    /// Send-window bound, frames.
    window: usize,
}

/// Default send-window bound, frames.
pub const DEFAULT_WINDOW: usize = 64;

fn io_err(e: &std::io::Error) -> TransportError {
    TransportError::Io(e.to_string())
}

impl TcpLink {
    /// Dials `addr` (e.g. `127.0.0.1:7070`) with a bounded send window.
    pub fn dial(addr: &str, window: usize) -> Result<TcpLink, TransportError> {
        let mut link = TcpLink {
            addr: Some(addr.to_string()),
            stream: None,
            pending: VecDeque::new(),
            head_off: 0,
            window: window.max(1),
        };
        link.connect()?;
        Ok(link)
    }

    /// Wraps an accepted server-side stream.
    pub fn accepted(stream: TcpStream, window: usize) -> Result<TcpLink, TransportError> {
        stream.set_nonblocking(true).map_err(|e| io_err(&e))?;
        stream.set_nodelay(true).map_err(|e| io_err(&e))?;
        Ok(TcpLink {
            addr: None,
            stream: Some(stream),
            pending: VecDeque::new(),
            head_off: 0,
            window: window.max(1),
        })
    }

    /// Writes as much pending data as the socket accepts right now.
    /// Returns `false` on a tear (the stream is dropped).
    fn flush(&mut self) -> bool {
        let Some(stream) = self.stream.as_mut() else {
            return false;
        };
        while let Some(front) = self.pending.front() {
            let chunk = front.get(self.head_off..).unwrap_or(&[]);
            if chunk.is_empty() {
                self.pending.pop_front();
                self.head_off = 0;
                continue;
            }
            match stream.write(chunk) {
                Ok(0) => {
                    self.stream = None;
                    return false;
                }
                Ok(n) => {
                    self.head_off += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.stream = None;
                    return false;
                }
            }
        }
        true
    }
}

impl Link for TcpLink {
    fn send_bytes(&mut self, frame: &[u8]) -> Result<SendStatus, TransportError> {
        if self.stream.is_none() {
            return Err(TransportError::Disconnected);
        }
        if self.pending.len() >= self.window {
            // Try to drain before refusing — the window measures real
            // socket backpressure, not tick granularity.
            if !self.flush() {
                return Err(TransportError::Disconnected);
            }
            if self.pending.len() >= self.window {
                return Ok(SendStatus::WindowFull);
            }
        }
        self.pending.push_back(frame.to_vec());
        if !self.flush() {
            return Err(TransportError::Disconnected);
        }
        Ok(SendStatus::Sent)
    }

    fn recv_bytes(&mut self, buf: &mut Vec<u8>) -> Result<usize, TransportError> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(TransportError::Disconnected);
        };
        let mut chunk = [0u8; 4096];
        let mut total = 0usize;
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // Orderly EOF: peer closed.
                    self.stream = None;
                    if total > 0 {
                        return Ok(total);
                    }
                    return Err(TransportError::Disconnected);
                }
                Ok(n) => {
                    buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                    total += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(total),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.stream = None;
                    if total > 0 {
                        return Ok(total);
                    }
                    return Err(io_err(&e));
                }
            }
        }
    }

    fn tick(&mut self) {
        self.flush();
    }

    fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn connect(&mut self) -> Result<(), TransportError> {
        let Some(addr) = self.addr.clone() else {
            // Accepted links cannot redial; the agent side owns
            // reconnection.
            return Err(TransportError::Disconnected);
        };
        self.pending.clear();
        self.head_off = 0;
        let stream = TcpStream::connect(&addr).map_err(|e| io_err(&e))?;
        stream.set_nonblocking(true).map_err(|e| io_err(&e))?;
        stream.set_nodelay(true).map_err(|e| io_err(&e))?;
        self.stream = Some(stream);
        Ok(())
    }

    fn shutdown(&mut self) {
        self.pending.clear();
        self.head_off = 0;
        self.stream = None;
    }
}

/// A non-blocking accept loop for the collector daemon.
#[derive(Debug)]
pub struct Acceptor {
    listener: TcpListener,
}

impl Acceptor {
    /// Binds `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> Result<Acceptor, TransportError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err(&e))?;
        listener.set_nonblocking(true).map_err(|e| io_err(&e))?;
        Ok(Acceptor { listener })
    }

    /// The bound address (`ip:port`), for port-file handoff.
    pub fn local_addr(&self) -> Result<String, TransportError> {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .map_err(|e| io_err(&e))
    }

    /// Accepts one pending connection, if any.
    pub fn poll_accept(&self, window: usize) -> Result<Option<TcpLink>, TransportError> {
        match self.listener.accept() {
            Ok((stream, _peer)) => TcpLink::accepted(stream, window).map(Some),
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(io_err(&e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::NodeAgent;
    use crate::collector::Collector;
    use zerosum_core::{NodeAggregate, NodeState};

    /// Binds a loopback listener, or `None` when the sandbox forbids
    /// sockets (the CI smoke stage reports that case visibly; here we
    /// can only skip).
    fn try_acceptor() -> Option<Acceptor> {
        Acceptor::bind("127.0.0.1:0").ok()
    }

    #[test]
    fn loopback_agent_to_collector_roundtrip() {
        let Some(acceptor) = try_acceptor() else {
            return; // sandbox forbids sockets; ci.sh surfaces SKIPPED
        };
        let addr = acceptor.local_addr().unwrap();
        let dial = TcpLink::dial(&addr, 8).unwrap();
        let mut agent = NodeAgent::new(dial, "tcp-node");
        let mut collector = Collector::new();
        collector.expect_node("tcp-node");
        // Accept the agent's connection (retry: non-blocking accept may
        // race the connect).
        let mut accepted = None;
        for _ in 0..1000 {
            if let Some(l) = acceptor.poll_accept(8).unwrap() {
                accepted = Some(l);
                break;
            }
        }
        collector.add_link(Box::new(accepted.expect("loopback accept")));
        let agg = NodeAggregate {
            hostname: "tcp-node".into(),
            ranks: 1,
            lwps: 4,
            mean_user_pct: 88.5,
            mean_idle_pct: 10.0,
            total_nvcsw: 7,
            rss_kib: 2048,
        };
        for r in 1..=4u64 {
            agent.begin_round(r, r as f64 * 0.1);
            agent.send_detail(r, 42, 50.0);
            // Loopback delivery is asynchronous: pump until this
            // round's heartbeat lands, then close the round (a
            // heartbeat latches until `end_round` consumes it).
            for _ in 0..10_000 {
                agent.tick();
                collector.pump_frames();
                if collector.stats.heartbeats_rx >= r {
                    break;
                }
            }
            collector.run_round();
        }
        agent.finish(4, agg.clone());
        for _ in 0..2000 {
            agent.tick();
            collector.pump_frames();
            if agent.done() && !collector.wire_aggregates().is_empty() {
                break;
            }
        }
        assert!(agent.done(), "aggregate never acked over loopback");
        assert_eq!(collector.wire_aggregates(), vec![agg]);
        assert_eq!(collector.cluster().node_state("tcp-node"), NodeState::Alive);
        assert_eq!(collector.stats.decode_errors, 0);
    }

    #[test]
    fn window_refuses_frames_when_peer_stalls() {
        let Some(acceptor) = try_acceptor() else {
            return;
        };
        let addr = acceptor.local_addr().unwrap();
        let mut link = TcpLink::dial(&addr, 2).unwrap();
        // Nobody ever accepts or reads; the OS buffer soaks up a bit,
        // then the pending queue hits the window.
        let big = vec![0xABu8; 256 * 1024];
        let mut saw_full = false;
        for _ in 0..64 {
            match link.send_bytes(&big) {
                Ok(SendStatus::WindowFull) => {
                    saw_full = true;
                    break;
                }
                Ok(SendStatus::Sent) => {}
                Err(_) => break, // a tear is also a valid outcome here
            }
        }
        assert!(saw_full || !link.is_connected());
    }

    #[test]
    fn peer_close_surfaces_as_disconnected_then_redial_works() {
        let Some(acceptor) = try_acceptor() else {
            return;
        };
        let addr = acceptor.local_addr().unwrap();
        let mut link = TcpLink::dial(&addr, 8).unwrap();
        let mut accepted = None;
        for _ in 0..1000 {
            if let Some(l) = acceptor.poll_accept(8).unwrap() {
                accepted = Some(l);
                break;
            }
        }
        drop(accepted); // collector side goes away
        let mut buf = Vec::new();
        let mut torn = false;
        for _ in 0..10_000 {
            link.tick();
            if link.send_bytes(b"ping").is_err() || link.recv_bytes(&mut buf).is_err() {
                torn = true;
                break;
            }
        }
        assert!(torn, "peer close never surfaced");
        assert!(link.connect().is_ok(), "redial against live listener");
        assert!(link.is_connected());
    }
}
