//! ZeroSum-rs wire layer: the paper's per-node monitors feeding an
//! allocation-wide collector, made real.
//!
//! The crate is organised as independently testable layers:
//!
//! * [`frame`] — the versioned, checksummed, length-prefixed binary
//!   codec. Decoding hostile bytes yields typed errors, never panics
//!   (enforced by fuzz tests *and* the panic-reachability audit).
//! * [`transport`] — the [`Link`] trait and the deterministic
//!   in-process backend ([`in_proc_pair`]) that keeps every chaos
//!   differential seed-reproducible.
//! * [`tcp`] — the same contract over non-blocking loopback/cluster
//!   TCP ([`TcpLink`], [`Acceptor`]).
//! * [`fault`] — seeded [`TransportFaultPlan`]s and the backend-
//!   agnostic [`FaultyLink`] chaos wrapper (drop, corrupt, truncate,
//!   delay, reorder, disconnect, partition, kill).
//! * [`agent`] — the node-side streamer: Hello/heartbeat/detail/
//!   aggregate protocol, detail shedding under backpressure, and
//!   reconnect-with-exponential-backoff that surfaces collector-side
//!   as plain silence for the Alive→Suspect→Dead machine.
//! * [`collector`] — the bounded daemon core driving
//!   [`zerosum_core::ClusterMonitor`] rounds off received frames.

#![warn(missing_docs)]

pub mod agent;
pub mod collector;
pub mod fault;
pub mod frame;
pub mod tcp;
pub mod transport;

pub use agent::{AgentConfig, AgentStats, NodeAgent};
pub use collector::{Collector, CollectorConfig, CollectorStats};
pub use fault::{FaultyLink, LinkFaultPlan, LinkFaultStats, TransportFaultPlan};
pub use frame::{decode_frame, encode_frame, frame_bytes, DecodeError, EncodeError, Frame};
pub use tcp::{Acceptor, TcpLink, DEFAULT_WINDOW};
pub use transport::{in_proc_pair, InProcLink, Link, SendStatus, TransportError};
