//! The [`Link`] abstraction: one byte-stream endpoint between a node
//! agent and the collector.
//!
//! Two backends implement it. [`InProcLink`] is a deterministic
//! in-process pipe (a [`Tracked`]-locked pair of frame queues) — the
//! tier-1 backend every chaos differential runs on, with no clocks, no
//! threads, and no sockets. `TcpLink` (see [`crate::tcp`]) speaks the
//! same frames over a non-blocking socket. Both expose the same
//! failure surface: sends observe a **bounded window** (backpressure
//! surfaces as [`SendStatus::WindowFull`], never an unbounded queue)
//! and a torn connection surfaces as
//! [`TransportError::Disconnected`], which the agent folds into its
//! reconnect backoff — and the collector's silence-driven
//! Alive→Suspect→Dead machine, not a parallel state machine.
//!
//! Everything here is tick-driven: time is whatever the caller's round
//! loop says it is. That keeps the whole in-process stack inside the
//! nondeterminism audit's det-reachable set with zero findings.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::sync::PoisonError;
use zerosum_core::Tracked;

/// A transport-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The connection is down. The caller may [`Link::connect`] again;
    /// whether that can succeed is the backend's (or fault plan's)
    /// business.
    Disconnected,
    /// An OS-level IO error, stringified (the net layer never bubbles
    /// raw `io::Error` sources across the API).
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "link disconnected"),
            TransportError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

/// Outcome of a non-failing send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendStatus {
    /// The frame was accepted into the send window.
    Sent,
    /// The send window is full: the frame was **not** taken. Shed it
    /// (per-LWP detail) or hold it for retransmission (aggregates).
    WindowFull,
}

/// One endpoint of a frame-carrying byte stream.
///
/// `send_bytes` takes exactly one encoded frame; `recv_bytes` appends
/// whatever bytes have arrived (frame boundaries are *not* preserved —
/// the collector reassembles with the stream decoder). `tick` advances
/// backend-internal time-free machinery: flushing pending socket
/// writes, releasing fault-delayed frames.
pub trait Link {
    /// Queues one encoded frame. `Ok(WindowFull)` means the bounded
    /// send window rejected it; the frame was not taken.
    fn send_bytes(&mut self, frame: &[u8]) -> Result<SendStatus, TransportError>;

    /// Appends received bytes to `buf`, returning how many arrived.
    /// `Ok(0)` simply means nothing is pending.
    fn recv_bytes(&mut self, buf: &mut Vec<u8>) -> Result<usize, TransportError>;

    /// Advances backend machinery one step (flush pending writes,
    /// deliver delayed frames). Never blocks.
    fn tick(&mut self);

    /// Whether the link currently believes itself connected. A
    /// half-open peer may still answer `true` — only silence at the
    /// supervision layer is authoritative.
    fn is_connected(&self) -> bool;

    /// (Re-)establishes the connection, dropping any in-flight frames
    /// from before the tear.
    fn connect(&mut self) -> Result<(), TransportError>;

    /// Tears the connection down locally.
    fn shutdown(&mut self);
}

impl Link for Box<dyn Link> {
    fn send_bytes(&mut self, frame: &[u8]) -> Result<SendStatus, TransportError> {
        (**self).send_bytes(frame)
    }
    fn recv_bytes(&mut self, buf: &mut Vec<u8>) -> Result<usize, TransportError> {
        (**self).recv_bytes(buf)
    }
    fn tick(&mut self) {
        (**self).tick()
    }
    fn is_connected(&self) -> bool {
        (**self).is_connected()
    }
    fn connect(&mut self) -> Result<(), TransportError> {
        (**self).connect()
    }
    fn shutdown(&mut self) {
        (**self).shutdown()
    }
}

/// Shared state of one in-process pipe: two frame queues (one per
/// direction) and a connected flag.
#[derive(Debug, Default)]
struct PipeState {
    /// Frames travelling A → B.
    a_to_b: VecDeque<Vec<u8>>,
    /// Frames travelling B → A.
    b_to_a: VecDeque<Vec<u8>>,
    /// Both endpoints observe the same connected flag: a shutdown on
    /// either side tears the pipe for both.
    connected: bool,
}

/// One endpoint of a deterministic in-process pipe. See
/// [`in_proc_pair`].
#[derive(Debug)]
pub struct InProcLink {
    pipe: Arc<Tracked<PipeState>>,
    /// True on the endpoint that sends A → B.
    side_a: bool,
    /// Send-window bound, frames.
    window: usize,
}

/// Builds a connected in-process pipe with a bounded per-direction
/// send window of `window` frames. Returns `(a, b)`; conventionally
/// the agent holds `a` and the collector holds `b`.
pub fn in_proc_pair(window: usize) -> (InProcLink, InProcLink) {
    let pipe = Arc::new(Tracked::new(
        "net.inproc.pipe",
        PipeState {
            connected: true,
            ..PipeState::default()
        },
    ));
    let a = InProcLink {
        pipe: Arc::clone(&pipe),
        side_a: true,
        window,
    };
    let b = InProcLink {
        pipe,
        side_a: false,
        window,
    };
    (a, b)
}

impl InProcLink {
    /// Frames currently queued toward this endpoint (test/debug aid).
    pub fn pending_inbound(&self) -> usize {
        let st = self.pipe.lock().unwrap_or_else(PoisonError::into_inner);
        if self.side_a {
            st.b_to_a.len()
        } else {
            st.a_to_b.len()
        }
    }
}

impl Link for InProcLink {
    fn send_bytes(&mut self, frame: &[u8]) -> Result<SendStatus, TransportError> {
        let mut st = self.pipe.lock().unwrap_or_else(PoisonError::into_inner);
        if !st.connected {
            return Err(TransportError::Disconnected);
        }
        let q = if self.side_a {
            &mut st.a_to_b
        } else {
            &mut st.b_to_a
        };
        if q.len() >= self.window {
            return Ok(SendStatus::WindowFull);
        }
        q.push_back(frame.to_vec());
        Ok(SendStatus::Sent)
    }

    fn recv_bytes(&mut self, buf: &mut Vec<u8>) -> Result<usize, TransportError> {
        let mut st = self.pipe.lock().unwrap_or_else(PoisonError::into_inner);
        if !st.connected {
            return Err(TransportError::Disconnected);
        }
        let q = if self.side_a {
            &mut st.b_to_a
        } else {
            &mut st.a_to_b
        };
        let mut n = 0;
        while let Some(frame) = q.pop_front() {
            n += frame.len();
            buf.extend_from_slice(&frame);
        }
        Ok(n)
    }

    fn tick(&mut self) {}

    fn is_connected(&self) -> bool {
        self.pipe
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .connected
    }

    fn connect(&mut self) -> Result<(), TransportError> {
        let mut st = self.pipe.lock().unwrap_or_else(PoisonError::into_inner);
        // A reconnect is a *new* stream: frames in flight at the tear
        // are gone, exactly like a fresh TCP connection.
        st.a_to_b.clear();
        st.b_to_a.clear();
        st.connected = true;
        Ok(())
    }

    fn shutdown(&mut self) {
        let mut st = self.pipe.lock().unwrap_or_else(PoisonError::into_inner);
        st.a_to_b.clear();
        st.b_to_a.clear();
        st.connected = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_carries_bytes_both_ways() {
        let (mut a, mut b) = in_proc_pair(4);
        assert!(a.is_connected() && b.is_connected());
        assert_eq!(a.send_bytes(b"ping").unwrap(), SendStatus::Sent);
        assert_eq!(b.send_bytes(b"pong").unwrap(), SendStatus::Sent);
        let mut got = Vec::new();
        assert_eq!(b.recv_bytes(&mut got).unwrap(), 4);
        assert_eq!(got, b"ping");
        got.clear();
        assert_eq!(a.recv_bytes(&mut got).unwrap(), 4);
        assert_eq!(got, b"pong");
    }

    #[test]
    fn window_bounds_the_send_queue() {
        let (mut a, mut b) = in_proc_pair(2);
        assert_eq!(a.send_bytes(b"1").unwrap(), SendStatus::Sent);
        assert_eq!(a.send_bytes(b"2").unwrap(), SendStatus::Sent);
        assert_eq!(a.send_bytes(b"3").unwrap(), SendStatus::WindowFull);
        let mut got = Vec::new();
        b.recv_bytes(&mut got).unwrap();
        assert_eq!(got, b"12");
        // Draining reopens the window.
        assert_eq!(a.send_bytes(b"3").unwrap(), SendStatus::Sent);
    }

    #[test]
    fn shutdown_tears_both_ends_and_reconnect_loses_in_flight() {
        let (mut a, mut b) = in_proc_pair(4);
        a.send_bytes(b"lost").unwrap();
        b.shutdown();
        assert!(!a.is_connected());
        assert_eq!(a.send_bytes(b"x"), Err(TransportError::Disconnected));
        let mut got = Vec::new();
        assert_eq!(b.recv_bytes(&mut got), Err(TransportError::Disconnected));
        a.connect().unwrap();
        assert!(b.is_connected());
        // The pre-tear frame did not survive the reconnect.
        assert_eq!(b.recv_bytes(&mut got).unwrap(), 0);
        assert_eq!(a.send_bytes(b"y").unwrap(), SendStatus::Sent);
        assert_eq!(b.recv_bytes(&mut got).unwrap(), 1);
    }
}
