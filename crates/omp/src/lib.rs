//! # zerosum-omp
//!
//! The OpenMP-runtime substrate for ZeroSum-rs.
//!
//! The paper's experiments are driven by three OpenMP environment
//! variables (`OMP_NUM_THREADS`, `OMP_PROC_BIND`, `OMP_PLACES`) and by the
//! OMPT tool interface through which ZeroSum learns which LWPs are OpenMP
//! threads (§3.1.2). This crate implements:
//!
//! * [`mod@env`] — environment parsing with OpenMP 5.x semantics.
//! * [`bind`] — the places/proc-bind affinity algorithm (`spread`,
//!   `close`, `master`, unbound).
//! * [`team`] — launching a thread team into the scheduler simulation.
//! * [`ompt`] — the tool-callback registry (`thread-begin`/`thread-end`).

#![warn(missing_docs)]

pub mod bind;
pub mod env;
pub mod ompt;
pub mod team;

pub use bind::{bind_team, expand_places, TeamBinding};
pub use env::{EnvError, OmpEnv, PlacesSpec, ProcBind};
pub use ompt::{OmpThreadType, OmptRegistry, ThreadBegin};
pub use team::{launch_team_process, TeamInfo};

// Property tests need the crates.io `proptest` crate; the container
// builds fully offline, so they are opt-in behind the no-op `proptests`
// feature (add `proptest` back to [dev-dependencies] to enable).
#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use crate::bind::bind_team;
    use crate::env::{OmpEnv, PlacesSpec, ProcBind};
    use proptest::prelude::*;
    use zerosum_topology::{presets, CpuSet};

    fn arb_bind() -> impl Strategy<Value = ProcBind> {
        prop_oneof![
            Just(ProcBind::False),
            Just(ProcBind::True),
            Just(ProcBind::Master),
            Just(ProcBind::Close),
            Just(ProcBind::Spread),
        ]
    }

    fn arb_places() -> impl Strategy<Value = PlacesSpec> {
        prop_oneof![
            Just(PlacesSpec::Undefined),
            Just(PlacesSpec::Threads),
            Just(PlacesSpec::Cores),
            Just(PlacesSpec::Sockets),
            Just(PlacesSpec::NumaDomains),
            Just(PlacesSpec::LlCaches),
        ]
    }

    proptest! {
        /// Every thread's mask is a non-empty subset of the process mask,
        /// for every policy/places/team-size combination.
        #[test]
        fn binding_stays_within_process_mask(
            bind in arb_bind(),
            places in arb_places(),
            team in 1usize..16,
            lo in 0u32..30,
            width in 1u32..40,
        ) {
            let topo = presets::frontier();
            let mask = CpuSet::range(lo, lo + width);
            let env = OmpEnv { num_threads: Some(team), proc_bind: bind, places };
            let b = bind_team(&topo, &env, &mask, team);
            prop_assert_eq!(b.masks.len(), team);
            for m in &b.masks {
                prop_assert!(!m.is_empty());
                prop_assert!(m.is_subset_of(&mask));
            }
        }

        /// Spread with team_size ≤ places gives pairwise-disjoint masks.
        #[test]
        fn spread_is_disjoint_when_places_suffice(team in 1usize..7) {
            let topo = presets::frontier();
            let mask = CpuSet::range(1, 7);
            let env = OmpEnv {
                num_threads: Some(team),
                proc_bind: ProcBind::Spread,
                places: PlacesSpec::Cores,
            };
            let b = bind_team(&topo, &env, &mask, team);
            for i in 0..team {
                for j in (i + 1)..team {
                    prop_assert!(!b.masks[i].intersects(&b.masks[j]),
                        "threads {} and {} overlap", i, j);
                }
            }
        }
    }
}
