//! OMPT-style tool callbacks.
//!
//! §3.1.2 of the paper: for OpenMP 5.1+ runtimes, ZeroSum registers an
//! OMPT callback so the runtime notifies the tool when an OpenMP thread
//! is created, letting ZeroSum identify which POSIX threads back OpenMP
//! threads. This module is the callback registry of our simulated
//! runtime; `zerosum-core` registers against it exactly as the real tool
//! registers against OMPT.

use zerosum_proc::Tid;

/// The type of an OpenMP thread, as reported in `thread-begin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OmpThreadType {
    /// The initial (master) thread of the team.
    Initial,
    /// A worker thread.
    Worker,
}

/// Data passed to a `thread-begin` callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadBegin {
    /// OpenMP thread number within the team (0 = master).
    pub thread_num: usize,
    /// The backing LWP id.
    pub tid: Tid,
    /// Initial or worker.
    pub thread_type: OmpThreadType,
}

/// A registry of tool callbacks, like `ompt_set_callback`.
#[derive(Default)]
pub struct OmptRegistry {
    thread_begin: Vec<Box<dyn FnMut(ThreadBegin) + Send>>,
    thread_end: Vec<Box<dyn FnMut(Tid) + Send>>,
}

impl OmptRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a `thread-begin` callback.
    pub fn on_thread_begin(&mut self, cb: impl FnMut(ThreadBegin) + Send + 'static) {
        self.thread_begin.push(Box::new(cb));
    }

    /// Registers a `thread-end` callback.
    pub fn on_thread_end(&mut self, cb: impl FnMut(Tid) + Send + 'static) {
        self.thread_end.push(Box::new(cb));
    }

    /// Fires `thread-begin` to every registered tool.
    pub fn emit_thread_begin(&mut self, ev: ThreadBegin) {
        for cb in &mut self.thread_begin {
            cb(ev);
        }
    }

    /// Fires `thread-end`.
    pub fn emit_thread_end(&mut self, tid: Tid) {
        for cb in &mut self.thread_end {
            cb(tid);
        }
    }

    /// Number of registered thread-begin callbacks.
    pub fn tool_count(&self) -> usize {
        self.thread_begin.len()
    }
}

impl std::fmt::Debug for OmptRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OmptRegistry")
            .field("thread_begin_callbacks", &self.thread_begin.len())
            .field("thread_end_callbacks", &self.thread_end.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn callbacks_fire_in_registration_order() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut reg = OmptRegistry::new();
        for tag in ["a", "b"] {
            let seen = Arc::clone(&seen);
            reg.on_thread_begin(move |ev| {
                seen.lock().unwrap().push((tag, ev.thread_num, ev.tid));
            });
        }
        reg.emit_thread_begin(ThreadBegin {
            thread_num: 2,
            tid: 77,
            thread_type: OmpThreadType::Worker,
        });
        assert_eq!(&*seen.lock().unwrap(), &[("a", 2, 77), ("b", 2, 77)]);
        assert_eq!(reg.tool_count(), 2);
    }

    #[test]
    fn thread_end_fires() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut reg = OmptRegistry::new();
        {
            let seen = Arc::clone(&seen);
            reg.on_thread_end(move |tid| seen.lock().unwrap().push(tid));
        }
        reg.emit_thread_end(42);
        assert_eq!(&*seen.lock().unwrap(), &[42]);
    }
}
