//! Thread-affinity assignment: OpenMP places × proc-bind policies.
//!
//! Given a topology, a process mask, and a parsed [`OmpEnv`], this module
//! computes the affinity mask of every team member — the step that turns
//! Table 2's free-floating threads into Table 3's one-thread-per-core
//! binding when `OMP_PROC_BIND=spread OMP_PLACES=cores` is set.

use crate::env::{OmpEnv, PlacesSpec, ProcBind};
use zerosum_topology::query::{self, PlaceGrain};
use zerosum_topology::{CpuSet, Topology};

/// Expands [`PlacesSpec`] into concrete places, restricted to the process
/// mask. Returns `None` when no places are defined (unbound execution).
pub fn expand_places(
    topo: &Topology,
    spec: &PlacesSpec,
    process_mask: &CpuSet,
) -> Option<Vec<CpuSet>> {
    match spec {
        PlacesSpec::Undefined => None,
        PlacesSpec::Threads => Some(query::places(topo, PlaceGrain::Threads, process_mask)),
        PlacesSpec::Cores => Some(query::places(topo, PlaceGrain::Cores, process_mask)),
        PlacesSpec::Sockets => Some(query::places(topo, PlaceGrain::Sockets, process_mask)),
        PlacesSpec::NumaDomains => Some(query::places(topo, PlaceGrain::NumaDomains, process_mask)),
        PlacesSpec::LlCaches => Some(query::places(topo, PlaceGrain::L3Caches, process_mask)),
        PlacesSpec::Explicit(groups) => {
            let mut out = Vec::new();
            for g in groups {
                let cs = CpuSet::from_indices(g.iter().copied()).intersection(process_mask);
                if !cs.is_empty() {
                    out.push(cs);
                }
            }
            Some(out)
        }
    }
}

/// The computed binding for a team.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamBinding {
    /// Affinity mask per team member; index 0 is the master thread.
    pub masks: Vec<CpuSet>,
    /// Whether threads are actually pinned (false = every mask equals the
    /// process mask and the OS is free to migrate).
    pub bound: bool,
}

/// Computes per-thread affinity for a team of `team_size` threads.
///
/// Follows OpenMP 5.x semantics for the initial place partition: `spread`
/// subdivides the place list into `team_size` sub-partitions and binds
/// thread `i` to the first place of sub-partition `i`; `close` binds
/// thread `i` to place `(master + i) mod nplaces`; `master` keeps every
/// thread on the master's place; `false` leaves all threads on the
/// process mask.
pub fn bind_team(
    topo: &Topology,
    env: &OmpEnv,
    process_mask: &CpuSet,
    team_size: usize,
) -> TeamBinding {
    assert!(team_size > 0, "team must have at least one thread");
    let places = expand_places(topo, &env.places, process_mask);
    let effective_bind = match (&env.proc_bind, &places) {
        // Binding requested but no places defined: bind over per-core
        // places, the common runtime default.
        (ProcBind::False, _) => ProcBind::False,
        (b, None) => {
            if matches!(b, ProcBind::False) {
                ProcBind::False
            } else {
                *b
            }
        }
        (b, Some(_)) => *b,
    };
    if effective_bind == ProcBind::False {
        return TeamBinding {
            masks: vec![process_mask.clone(); team_size],
            bound: false,
        };
    }
    let places = places.unwrap_or_else(|| query::places(topo, PlaceGrain::Cores, process_mask));
    if places.is_empty() {
        return TeamBinding {
            masks: vec![process_mask.clone(); team_size],
            bound: false,
        };
    }
    let nplaces = places.len();
    let masks: Vec<CpuSet> = match effective_bind {
        ProcBind::Master => vec![places[0].clone(); team_size],
        ProcBind::Close | ProcBind::True => (0..team_size)
            .map(|i| places[i % nplaces].clone())
            .collect(),
        ProcBind::Spread => {
            if team_size >= nplaces {
                // More threads than places: wrap like close.
                (0..team_size)
                    .map(|i| places[i % nplaces].clone())
                    .collect()
            } else {
                // Partition places into team_size contiguous groups; bind
                // thread i to the first place of its group.
                (0..team_size)
                    .map(|i| {
                        let start = i * nplaces / team_size;
                        places[start].clone()
                    })
                    .collect()
            }
        }
        ProcBind::False => unreachable!(),
    };
    TeamBinding { masks, bound: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::OmpEnv;
    use zerosum_topology::presets;

    fn frontier_rank0_mask() -> CpuSet {
        CpuSet::parse_list("1-7").unwrap()
    }

    #[test]
    fn unbound_gives_process_mask() {
        let topo = presets::frontier();
        let env = OmpEnv::from_pairs([("OMP_NUM_THREADS", "7")]).unwrap();
        let b = bind_team(&topo, &env, &frontier_rank0_mask(), 7);
        assert!(!b.bound);
        assert_eq!(b.masks.len(), 7);
        assert!(b.masks.iter().all(|m| m.to_list_string() == "1-7"));
    }

    #[test]
    fn spread_cores_pins_one_thread_per_core() {
        // Table 3: OMP_PROC_BIND=spread OMP_PLACES=cores, 7 threads on the
        // 7-core mask ⇒ threads on cores 1..7 individually.
        let topo = presets::frontier();
        let env = OmpEnv::from_pairs([
            ("OMP_NUM_THREADS", "7"),
            ("OMP_PROC_BIND", "spread"),
            ("OMP_PLACES", "cores"),
        ])
        .unwrap();
        let b = bind_team(&topo, &env, &frontier_rank0_mask(), 7);
        assert!(b.bound);
        let lists: Vec<String> = b.masks.iter().map(|m| m.to_list_string()).collect();
        assert_eq!(lists, vec!["1", "2", "3", "4", "5", "6", "7"]);
    }

    #[test]
    fn spread_fewer_threads_than_places() {
        // 4 threads over 7 core-places: sub-partitions start at 0,1,3,5.
        let topo = presets::frontier();
        let env =
            OmpEnv::from_pairs([("OMP_PROC_BIND", "spread"), ("OMP_PLACES", "cores")]).unwrap();
        let b = bind_team(&topo, &env, &frontier_rank0_mask(), 4);
        let lists: Vec<String> = b.masks.iter().map(|m| m.to_list_string()).collect();
        assert_eq!(lists, vec!["1", "2", "4", "6"]);
    }

    #[test]
    fn close_wraps_places() {
        let topo = presets::frontier();
        let env =
            OmpEnv::from_pairs([("OMP_PROC_BIND", "close"), ("OMP_PLACES", "cores")]).unwrap();
        let b = bind_team(&topo, &env, &CpuSet::parse_list("1-3").unwrap(), 5);
        let lists: Vec<String> = b.masks.iter().map(|m| m.to_list_string()).collect();
        assert_eq!(lists, vec!["1", "2", "3", "1", "2"]);
    }

    #[test]
    fn master_keeps_all_on_first_place() {
        let topo = presets::frontier();
        let env =
            OmpEnv::from_pairs([("OMP_PROC_BIND", "master"), ("OMP_PLACES", "cores")]).unwrap();
        let b = bind_team(&topo, &env, &frontier_rank0_mask(), 4);
        assert!(b.masks.iter().all(|m| m.to_list_string() == "1"));
    }

    #[test]
    fn threads_places_with_smt_mask() {
        let topo = presets::frontier();
        let env =
            OmpEnv::from_pairs([("OMP_PROC_BIND", "close"), ("OMP_PLACES", "threads")]).unwrap();
        let mask = CpuSet::parse_list("1-2,65-66").unwrap();
        let b = bind_team(&topo, &env, &mask, 4);
        let lists: Vec<String> = b.masks.iter().map(|m| m.to_list_string()).collect();
        // Places in topology order: PU 1, PU 65 (core 1), PU 2, PU 66.
        assert_eq!(lists, vec!["1", "65", "2", "66"]);
    }

    #[test]
    fn explicit_places_respected() {
        let topo = presets::frontier();
        let env = OmpEnv::from_pairs([("OMP_PROC_BIND", "close"), ("OMP_PLACES", "{1,65},{2,66}")])
            .unwrap();
        let mask = CpuSet::parse_list("1-7,65-71").unwrap();
        let b = bind_team(&topo, &env, &mask, 2);
        assert_eq!(b.masks[0].to_list_string(), "1,65");
        assert_eq!(b.masks[1].to_list_string(), "2,66");
    }

    #[test]
    fn bind_true_without_places_uses_cores() {
        let topo = presets::frontier();
        let env = OmpEnv::from_pairs([("OMP_PROC_BIND", "true")]).unwrap();
        let b = bind_team(&topo, &env, &frontier_rank0_mask(), 3);
        assert!(b.bound);
        let lists: Vec<String> = b.masks.iter().map(|m| m.to_list_string()).collect();
        assert_eq!(lists, vec!["1", "2", "3"]);
    }
}
