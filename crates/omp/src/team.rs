//! Team launch: spawning an OpenMP-style thread team into a [`NodeSim`]
//! process with affinity from the binding policy and OMPT notifications.

use crate::bind::{bind_team, TeamBinding};
use crate::env::OmpEnv;
use crate::ompt::{OmpThreadType, OmptRegistry, ThreadBegin};
use zerosum_proc::{Pid, Tid};
use zerosum_sched::{Behavior, NodeSim, WorkerSpec};
use zerosum_topology::CpuSet;

/// Description of a launched team.
#[derive(Debug, Clone)]
pub struct TeamInfo {
    /// The owning process.
    pub pid: Pid,
    /// LWP ids of the team in thread-number order (index 0 = master, the
    /// process main thread).
    pub tids: Vec<Tid>,
    /// The binding that was applied.
    pub binding: TeamBinding,
}

/// Launches a process whose main thread is the master of an OpenMP team.
///
/// `mk_spec(thread_num, is_master)` builds each member's workload; the
/// spec's `is_leader` flag is overridden to match the master. Worker
/// threads are named `"OpenMP"` (like the AMD runtime's worker naming in
/// the paper's LWP tables). `ompt` receives a `thread-begin` per member,
/// exactly as a 5.1-compliant runtime notifies a registered tool.
#[allow(clippy::too_many_arguments)]
pub fn launch_team_process(
    sim: &mut NodeSim,
    name: &str,
    process_mask: CpuSet,
    rss_kib: u64,
    env: &OmpEnv,
    mk_spec: impl Fn(usize, bool) -> WorkerSpec,
    ompt: &mut OmptRegistry,
) -> TeamInfo {
    let team_size = env
        .num_threads
        .unwrap_or_else(|| process_mask.count().max(1));
    let binding = bind_team(sim.topology(), env, &process_mask, team_size);
    // Master (main thread).
    let mut spec = mk_spec(0, true);
    spec.is_leader = true;
    let pid = sim.spawn_process(name, process_mask, rss_kib, Behavior::worker(spec));
    sim.set_task_affinity(pid, binding.masks[0].clone());
    let mut tids = vec![pid];
    ompt.emit_thread_begin(ThreadBegin {
        thread_num: 0,
        tid: pid,
        thread_type: OmpThreadType::Initial,
    });
    // Workers.
    for i in 1..team_size {
        let mut spec = mk_spec(i, false);
        spec.is_leader = false;
        let tid = sim.spawn_task(
            pid,
            "OpenMP",
            Some(binding.masks[i].clone()),
            Behavior::worker(spec),
            false,
        );
        tids.push(tid);
        ompt.emit_thread_begin(ThreadBegin {
            thread_num: i,
            tid,
            thread_type: OmpThreadType::Worker,
        });
    }
    TeamInfo { pid, tids, binding }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};
    use zerosum_sched::SchedParams;
    use zerosum_topology::presets;

    fn spec(iters: u32) -> WorkerSpec {
        WorkerSpec {
            iterations: iters,
            work_per_iter_us: 2_000,
            noise_frac: 0.0,
            sys_per_iter_us: 0,
            leader_extra_us: 0,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader: false,
            barrier: Some(1),
            offload: None,
        }
    }

    #[test]
    fn team_spawns_bound_threads_and_fires_ompt() {
        let mut sim = NodeSim::new(presets::frontier(), SchedParams::default());
        let env = OmpEnv::from_pairs([
            ("OMP_NUM_THREADS", "7"),
            ("OMP_PROC_BIND", "spread"),
            ("OMP_PLACES", "cores"),
        ])
        .unwrap();
        let mask = CpuSet::parse_list("1-7").unwrap();
        let mut ompt = OmptRegistry::new();
        let events = Arc::new(Mutex::new(Vec::new()));
        {
            let events = Arc::clone(&events);
            ompt.on_thread_begin(move |ev| events.lock().unwrap().push(ev));
        }
        let team = launch_team_process(
            &mut sim,
            "miniqmc",
            mask,
            4096,
            &env,
            |_, _| spec(3),
            &mut ompt,
        );
        assert_eq!(team.tids.len(), 7);
        assert!(team.binding.bound);
        // OMPT saw all 7 threads, master first.
        let evs = events.lock().unwrap();
        assert_eq!(evs.len(), 7);
        assert_eq!(evs[0].thread_num, 0);
        assert_eq!(evs[0].thread_type, OmpThreadType::Initial);
        assert_eq!(evs[6].thread_num, 6);
        // Affinity applied: worker 3 pinned to core 4.
        let t = sim.task_by_tid(team.tids[3]).unwrap();
        assert_eq!(t.affinity.to_list_string(), "4");
        // The team runs to completion.
        let done = sim.run_until_apps_done(5_000, 60_000_000);
        assert!(done.is_some());
    }

    #[test]
    fn default_team_size_is_mask_width() {
        let mut sim = NodeSim::new(presets::frontier(), SchedParams::default());
        let env = OmpEnv::default();
        let mask = CpuSet::parse_list("1-7").unwrap();
        let mut ompt = OmptRegistry::new();
        let team = launch_team_process(&mut sim, "app", mask, 64, &env, |_, _| spec(1), &mut ompt);
        // taskset of 7 CPUs ⇒ team of 7 (the §3.1.2 example).
        assert_eq!(team.tids.len(), 7);
        assert!(!team.binding.bound);
    }

    #[test]
    fn master_is_leader_in_spec() {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let env = OmpEnv::from_pairs([("OMP_NUM_THREADS", "2")]).unwrap();
        let mut ompt = OmptRegistry::new();
        let team = launch_team_process(
            &mut sim,
            "app",
            CpuSet::from_indices([0u32, 1]),
            64,
            &env,
            |_, _| spec(2),
            &mut ompt,
        );
        assert_eq!(team.tids[0], team.pid);
        sim.run_until_apps_done(5_000, 60_000_000)
            .expect("finishes");
    }
}
