//! OpenMP environment-variable parsing.
//!
//! The paper's Tables 1–3 differ only in `OMP_NUM_THREADS`,
//! `OMP_PROC_BIND`, and `OMP_PLACES`. This module parses those variables
//! (from an explicit map, so experiments are hermetic) with OpenMP 5.x
//! semantics for the subset ZeroSum's workloads exercise.

use std::collections::BTreeMap;
use std::fmt;

/// The `OMP_PROC_BIND` policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProcBind {
    /// `false` — threads are not bound (the OS schedules freely within
    /// the process mask). Table 2's configuration.
    #[default]
    False,
    /// `true` — implementation-defined binding; treated as `close`.
    True,
    /// `master` — all threads bound to the master thread's place.
    Master,
    /// `close` — threads packed onto places near the master.
    Close,
    /// `spread` — threads spread across the place partition. Table 3's
    /// configuration.
    Spread,
}

impl ProcBind {
    /// Parses the `OMP_PROC_BIND` value (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, EnvError> {
        Ok(match s.trim().to_ascii_lowercase().as_str() {
            "false" => ProcBind::False,
            "true" => ProcBind::True,
            "master" | "primary" => ProcBind::Master,
            "close" => ProcBind::Close,
            "spread" => ProcBind::Spread,
            other => return Err(EnvError::BadProcBind(other.to_string())),
        })
    }
}

/// The `OMP_PLACES` value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PlacesSpec {
    /// No places defined (unbound default).
    #[default]
    Undefined,
    /// `threads` — one place per hardware thread.
    Threads,
    /// `cores` — one place per core.
    Cores,
    /// `sockets` — one place per package.
    Sockets,
    /// `numa_domains` — one place per NUMA domain (OpenMP 5.1).
    NumaDomains,
    /// `ll_caches` — one place per last-level cache (OpenMP 5.1).
    LlCaches,
    /// An explicit list like `{0,4},{1,5}` — each brace group is a place
    /// of hardware-thread OS indices.
    Explicit(Vec<Vec<u32>>),
}

impl PlacesSpec {
    /// Parses the `OMP_PLACES` value.
    pub fn parse(s: &str) -> Result<Self, EnvError> {
        let t = s.trim();
        if t.is_empty() {
            return Ok(PlacesSpec::Undefined);
        }
        match t.to_ascii_lowercase().as_str() {
            "threads" => return Ok(PlacesSpec::Threads),
            "cores" => return Ok(PlacesSpec::Cores),
            "sockets" => return Ok(PlacesSpec::Sockets),
            "numa_domains" => return Ok(PlacesSpec::NumaDomains),
            "ll_caches" => return Ok(PlacesSpec::LlCaches),
            _ => {}
        }
        if !t.starts_with('{') {
            return Err(EnvError::BadPlaces(t.to_string()));
        }
        let mut places = Vec::new();
        for group in t.split('}') {
            let group = group.trim().trim_start_matches(',').trim();
            if group.is_empty() {
                continue;
            }
            let inner = group
                .strip_prefix('{')
                .ok_or_else(|| EnvError::BadPlaces(t.to_string()))?;
            let mut ids = Vec::new();
            for tok in inner.split(',') {
                let tok = tok.trim();
                if tok.is_empty() {
                    continue;
                }
                if let Some((lo, hi)) = tok.split_once(':') {
                    // OpenMP interval notation {lo:len}.
                    let lo: u32 = lo
                        .trim()
                        .parse()
                        .map_err(|_| EnvError::BadPlaces(t.into()))?;
                    let len: u32 = hi
                        .trim()
                        .parse()
                        .map_err(|_| EnvError::BadPlaces(t.into()))?;
                    ids.extend(lo..lo + len);
                } else {
                    ids.push(tok.parse().map_err(|_| EnvError::BadPlaces(t.into()))?);
                }
            }
            if ids.is_empty() {
                return Err(EnvError::BadPlaces(t.to_string()));
            }
            places.push(ids);
        }
        if places.is_empty() {
            return Err(EnvError::BadPlaces(t.to_string()));
        }
        Ok(PlacesSpec::Explicit(places))
    }
}

/// A parsed OpenMP environment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OmpEnv {
    /// `OMP_NUM_THREADS`; `None` means "one per available processor".
    pub num_threads: Option<usize>,
    /// `OMP_PROC_BIND`.
    pub proc_bind: ProcBind,
    /// `OMP_PLACES`.
    pub places: PlacesSpec,
}

impl OmpEnv {
    /// Parses the relevant variables from a map (e.g. captured environment
    /// or an experiment's explicit settings).
    pub fn from_map(vars: &BTreeMap<String, String>) -> Result<Self, EnvError> {
        let mut env = OmpEnv::default();
        if let Some(v) = vars.get("OMP_NUM_THREADS") {
            let n: usize = v
                .trim()
                .parse()
                .map_err(|_| EnvError::BadNumThreads(v.clone()))?;
            if n == 0 {
                return Err(EnvError::BadNumThreads(v.clone()));
            }
            env.num_threads = Some(n);
        }
        if let Some(v) = vars.get("OMP_PROC_BIND") {
            env.proc_bind = ProcBind::parse(v)?;
        }
        if let Some(v) = vars.get("OMP_PLACES") {
            env.places = PlacesSpec::parse(v)?;
            // Per the spec: OMP_PLACES set without OMP_PROC_BIND implies
            // proc_bind=true.
            if !vars.contains_key("OMP_PROC_BIND") {
                env.proc_bind = ProcBind::True;
            }
        }
        Ok(env)
    }

    /// Convenience constructor from `(key, value)` pairs.
    pub fn from_pairs<'a, I: IntoIterator<Item = (&'a str, &'a str)>>(
        pairs: I,
    ) -> Result<Self, EnvError> {
        let map = pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        Self::from_map(&map)
    }
}

/// OpenMP environment parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvError {
    /// Invalid `OMP_NUM_THREADS`.
    BadNumThreads(String),
    /// Invalid `OMP_PROC_BIND`.
    BadProcBind(String),
    /// Invalid `OMP_PLACES`.
    BadPlaces(String),
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::BadNumThreads(v) => write!(f, "invalid OMP_NUM_THREADS: {v:?}"),
            EnvError::BadProcBind(v) => write!(f, "invalid OMP_PROC_BIND: {v:?}"),
            EnvError::BadPlaces(v) => write!(f, "invalid OMP_PLACES: {v:?}"),
        }
    }
}

impl std::error::Error for EnvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table3_environment() {
        let env = OmpEnv::from_pairs([
            ("OMP_NUM_THREADS", "4"),
            ("OMP_PROC_BIND", "spread"),
            ("OMP_PLACES", "cores"),
        ])
        .unwrap();
        assert_eq!(env.num_threads, Some(4));
        assert_eq!(env.proc_bind, ProcBind::Spread);
        assert_eq!(env.places, PlacesSpec::Cores);
    }

    #[test]
    fn default_is_unbound() {
        let env = OmpEnv::from_pairs([("OMP_NUM_THREADS", "7")]).unwrap();
        assert_eq!(env.proc_bind, ProcBind::False);
        assert_eq!(env.places, PlacesSpec::Undefined);
    }

    #[test]
    fn places_without_bind_implies_true() {
        let env = OmpEnv::from_pairs([("OMP_PLACES", "threads")]).unwrap();
        assert_eq!(env.proc_bind, ProcBind::True);
    }

    #[test]
    fn explicit_places_with_ranges() {
        let p = PlacesSpec::parse("{0,4},{1,5},{2:2}").unwrap();
        assert_eq!(
            p,
            PlacesSpec::Explicit(vec![vec![0, 4], vec![1, 5], vec![2, 3]])
        );
    }

    #[test]
    fn proc_bind_aliases() {
        assert_eq!(ProcBind::parse("PRIMARY").unwrap(), ProcBind::Master);
        assert_eq!(ProcBind::parse("TRUE").unwrap(), ProcBind::True);
        assert!(ProcBind::parse("sideways").is_err());
    }

    #[test]
    fn bad_values_error() {
        assert!(OmpEnv::from_pairs([("OMP_NUM_THREADS", "0")]).is_err());
        assert!(OmpEnv::from_pairs([("OMP_NUM_THREADS", "x")]).is_err());
        assert!(PlacesSpec::parse("cubes").is_err());
        assert!(PlacesSpec::parse("{}").is_err());
        assert!(PlacesSpec::parse("{a}").is_err());
    }

    #[test]
    fn numa_and_llc_places() {
        assert_eq!(
            PlacesSpec::parse("numa_domains").unwrap(),
            PlacesSpec::NumaDomains
        );
        assert_eq!(
            PlacesSpec::parse("ll_caches").unwrap(),
            PlacesSpec::LlCaches
        );
    }
}
