//! # zerosum-core
//!
//! The ZeroSum monitor — the paper's primary contribution, as a library.
//!
//! ZeroSum (Huck & Malony, HUST-23) provides user-space monitoring of
//! application processes, threads, and hardware resources on
//! heterogeneous HPC systems: configuration detection through `/proc`,
//! periodic sampling by an asynchronous thread, utilization and
//! contention reports, and CSV export for time-series analysis — all at
//! under 0.5% overhead. This crate implements the tool:
//!
//! * [`config`] — sampling period, monitor-thread placement, cost model.
//! * [`monitor`] — the periodic sampler over any
//!   [`zerosum_proc::ProcSource`] (live Linux or the node simulation).
//! * [`lwp`], [`hwt`], [`memory`] — per-thread, per-CPU, and memory
//!   tracking (§3.1, §3.4, §3.5).
//! * [`report`] — the Listing 2 utilization report.
//! * [`contention`] — the §3.5 contention report.
//! * [`evaluator`] — configuration evaluation rules (the §3.2 extension).
//! * [`heartbeat`] — progress detection and deadlock heuristics (§3.3).
//! * [`export`] — CSV/log exportation (§3.6).
//! * [`signal`] — abnormal-exit reporting (§3.1).
//! * [`gpu_link`], [`runner`] — the virtual-time driver coupling the
//!   monitor to `zerosum-sched`'s node simulation.
//! * [`attach`] — live self-monitoring of a real process on Linux.

#![warn(missing_docs)]

pub mod attach;
pub mod cluster;
pub mod config;
pub mod contention;
pub mod evaluator;
pub mod export;
pub mod feed;
pub mod gpu_link;
pub mod health;
pub mod heartbeat;
pub mod hwt;
pub mod lwp;
pub mod memory;
pub mod monitor;
pub mod report;
pub mod runner;
pub mod signal;
pub mod sync;

pub use attach::SelfMonitor;
pub use cluster::{ClusterMonitor, NodeAggregate, NodeState, NodeSupervision, SupervisionConfig};
pub use config::{MonitorCost, MonitorPlacement, OverheadConfig, ResilienceConfig, ZeroSumConfig};
pub use contention::{analyze, ContentionReport};
pub use evaluator::{evaluate, evaluate_gpu_memory, render_findings, Finding, Severity};
pub use feed::{LwpSnapshot, ProcessSnapshot, SampleFeed, SampleSnapshot};
pub use gpu_link::{GpuStack, SimGpuLink};
pub use health::{FailureAction, HealthLedger, ProcessHealth, TaskFailState};
pub use heartbeat::{Liveness, ProgressTracker};
pub use lwp::{LwpKind, LwpRegistry, LwpTrack};
pub use monitor::{
    GovernorState, Monitor, PeriodChange, ProcessInfo, ProcessWatch, SupervisorStats,
};
pub use report::{render_process_report, render_summary, GpuReportContext};
pub use runner::{
    attach_monitor_threads, run_baseline, run_monitored, run_monitored_faulty, RunOutcome,
};
pub use sync::{clear_observed_lock_edges, observed_lock_edges, Tracked, TrackedGuard};
