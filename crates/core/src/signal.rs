//! Abnormal-exit reporting (§3.1).
//!
//! The paper's ZeroSum optionally installs a signal handler to report a
//! backtrace on segmentation violations, bus errors, and other abnormal
//! exits. Installing real signal handlers requires `unsafe` libc
//! interop; this reproduction provides the reporting half as a safe
//! library — capture a backtrace and format the crash report — plus a
//! Rust-native hook for panics, which are the analogous abnormal-exit
//! path in a Rust application.

use crate::sync::Tracked;
use std::backtrace::Backtrace;
use std::fmt::Write as _;

/// Registered abnormal-exit flush callbacks (e.g. partial-log writers).
static CRASH_FLUSHES: Tracked<Vec<Box<dyn Fn() + Send>>> =
    Tracked::new("core.signal.crash_flushes", Vec::new());

/// The abnormal-exit causes ZeroSum reports on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbnormalExit {
    /// SIGSEGV — invalid memory reference.
    SegmentationViolation,
    /// SIGBUS — bus error.
    BusError,
    /// SIGFPE — arithmetic fault.
    FloatingPointException,
    /// SIGILL — illegal instruction.
    IllegalInstruction,
    /// SIGABRT / Rust panic.
    Abort,
}

impl AbnormalExit {
    /// The conventional signal name.
    pub fn signal_name(self) -> &'static str {
        match self {
            AbnormalExit::SegmentationViolation => "SIGSEGV",
            AbnormalExit::BusError => "SIGBUS",
            AbnormalExit::FloatingPointException => "SIGFPE",
            AbnormalExit::IllegalInstruction => "SIGILL",
            AbnormalExit::Abort => "SIGABRT",
        }
    }
}

/// Formats the crash report ZeroSum writes before the process dies:
/// cause, process identity, and a captured backtrace.
pub fn crash_report(cause: AbnormalExit, pid: u32, rank: Option<u32>) -> String {
    let bt = Backtrace::force_capture();
    let mut out = String::new();
    writeln!(
        out,
        "ZeroSum: abnormal exit — {} ({:?})",
        cause.signal_name(),
        cause
    )
    .unwrap();
    match rank {
        Some(r) => writeln!(out, "ZeroSum: MPI {r:03} - PID {pid}").unwrap(),
        None => writeln!(out, "ZeroSum: PID {pid}").unwrap(),
    }
    writeln!(out, "ZeroSum: backtrace follows").unwrap();
    writeln!(out, "{bt}").unwrap();
    out
}

/// Registers a callback to run on the abnormal-exit path — typically a
/// partial-log flush ([`crate::export::write_partial_logs`]) so a dying
/// application still leaves a complete, atomically-written log. Flushes
/// run in registration order from [`run_crash_flushes`] and from the
/// panic hook installed by [`install_panic_hook`].
pub fn register_crash_flush(f: impl Fn() + Send + 'static) {
    if let Ok(mut v) = CRASH_FLUSHES.lock() {
        v.push(Box::new(f));
    }
}

/// Runs every registered crash flush, isolating each in `catch_unwind`
/// so one failing flush cannot silence the rest. Returns the number of
/// callbacks that ran (panicking ones included). Uses `try_lock`: if the
/// registry is locked by the very code that is crashing, skipping the
/// flush beats deadlocking the exit path.
///
/// The registry lock is NOT held while callbacks run: flushes are
/// arbitrary closures that may acquire monitor locks of their own, and
/// holding the registry across them put the registry at the root of
/// every flush's lock order (the audit's lock-across-* passes flag
/// exactly this shape). The list is taken out, run unlocked, and put
/// back so callbacks stay registered for a later real crash.
pub fn run_crash_flushes() -> usize {
    let taken = {
        let Ok(mut flushes) = CRASH_FLUSHES.try_lock() else {
            return 0;
        };
        std::mem::take(&mut *flushes)
    };
    let mut ran = 0;
    for f in taken.iter() {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        ran += 1;
    }
    // Put the callbacks back, preserving registration order ahead of
    // anything registered while we were running.
    if let Ok(mut flushes) = CRASH_FLUSHES.lock() {
        let newer = std::mem::replace(&mut *flushes, taken);
        flushes.extend(newer);
    }
    ran
}

/// Empties the crash-flush registry (tests, or re-initialisation after
/// monitoring ends).
pub fn clear_crash_flushes() {
    if let Ok(mut v) = CRASH_FLUSHES.lock() {
        v.clear();
    }
}

/// The complete abnormal-exit path as a callable: run the registered
/// flushes, then produce the crash report. This is what a real signal
/// handler (or the panic hook below) executes before the process dies.
pub fn report_abnormal_exit(cause: AbnormalExit, pid: u32, rank: Option<u32>) -> String {
    run_crash_flushes();
    crash_report(cause, pid, rank)
}

/// Installs a Rust panic hook that runs the registered crash flushes and
/// prints a ZeroSum crash report to stderr before delegating to the
/// previous hook — the Rust-native equivalent of the paper's signal
/// handler. Returns nothing; safe to call once at startup.
pub fn install_panic_hook(rank: Option<u32>) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let report = report_abnormal_exit(AbnormalExit::Abort, std::process::id(), rank);
        // Write directly (not via `eprintln!`) so a closed stderr cannot
        // turn the crash report itself into a second panic.
        use std::io::Write as _;
        let _ = writeln!(std::io::stderr(), "{report}");
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_names() {
        assert_eq!(AbnormalExit::SegmentationViolation.signal_name(), "SIGSEGV");
        assert_eq!(AbnormalExit::BusError.signal_name(), "SIGBUS");
        assert_eq!(AbnormalExit::Abort.signal_name(), "SIGABRT");
    }

    #[test]
    fn crash_report_contains_identity_and_backtrace_header() {
        let rep = crash_report(AbnormalExit::SegmentationViolation, 4242, Some(3));
        assert!(rep.contains("SIGSEGV"));
        assert!(rep.contains("MPI 003 - PID 4242"));
        assert!(rep.contains("backtrace follows"));
    }

    #[test]
    fn crash_report_without_rank() {
        let rep = crash_report(AbnormalExit::FloatingPointException, 7, None);
        assert!(rep.contains("PID 7"));
        assert!(!rep.contains("MPI"));
    }

    // One test exercises the whole registry lifecycle: the registry is a
    // process-wide global, so splitting these into separate (parallel)
    // tests would race.
    #[test]
    fn crash_flush_registry_lifecycle() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        clear_crash_flushes();
        let hits = Arc::new(AtomicU32::new(0));
        let h1 = hits.clone();
        register_crash_flush(move || {
            h1.fetch_add(1, Ordering::SeqCst);
        });
        register_crash_flush(|| panic!("bad flush"));
        let h2 = hits.clone();
        register_crash_flush(move || {
            h2.fetch_add(10, Ordering::SeqCst);
        });
        // Silence the panic hook for the intentionally-bad flush.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let ran = run_crash_flushes();
        assert_eq!(ran, 3);
        assert_eq!(hits.load(Ordering::SeqCst), 11, "good flushes both ran");
        // The abnormal-exit path runs the flushes, then reports.
        let rep = report_abnormal_exit(AbnormalExit::BusError, 99, None);
        std::panic::set_hook(prev);
        assert_eq!(hits.load(Ordering::SeqCst) % 11, 0, "flushes ran again");
        assert!(rep.contains("SIGBUS"));
        clear_crash_flushes();
        assert_eq!(run_crash_flushes(), 0);
    }
}
