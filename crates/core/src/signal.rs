//! Abnormal-exit reporting (§3.1).
//!
//! The paper's ZeroSum optionally installs a signal handler to report a
//! backtrace on segmentation violations, bus errors, and other abnormal
//! exits. Installing real signal handlers requires `unsafe` libc
//! interop; this reproduction provides the reporting half as a safe
//! library — capture a backtrace and format the crash report — plus a
//! Rust-native hook for panics, which are the analogous abnormal-exit
//! path in a Rust application.

use std::backtrace::Backtrace;
use std::fmt::Write as _;

/// The abnormal-exit causes ZeroSum reports on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbnormalExit {
    /// SIGSEGV — invalid memory reference.
    SegmentationViolation,
    /// SIGBUS — bus error.
    BusError,
    /// SIGFPE — arithmetic fault.
    FloatingPointException,
    /// SIGILL — illegal instruction.
    IllegalInstruction,
    /// SIGABRT / Rust panic.
    Abort,
}

impl AbnormalExit {
    /// The conventional signal name.
    pub fn signal_name(self) -> &'static str {
        match self {
            AbnormalExit::SegmentationViolation => "SIGSEGV",
            AbnormalExit::BusError => "SIGBUS",
            AbnormalExit::FloatingPointException => "SIGFPE",
            AbnormalExit::IllegalInstruction => "SIGILL",
            AbnormalExit::Abort => "SIGABRT",
        }
    }
}

/// Formats the crash report ZeroSum writes before the process dies:
/// cause, process identity, and a captured backtrace.
pub fn crash_report(cause: AbnormalExit, pid: u32, rank: Option<u32>) -> String {
    let bt = Backtrace::force_capture();
    let mut out = String::new();
    writeln!(
        out,
        "ZeroSum: abnormal exit — {} ({:?})",
        cause.signal_name(),
        cause
    )
    .unwrap();
    match rank {
        Some(r) => writeln!(out, "ZeroSum: MPI {r:03} - PID {pid}").unwrap(),
        None => writeln!(out, "ZeroSum: PID {pid}").unwrap(),
    }
    writeln!(out, "ZeroSum: backtrace follows").unwrap();
    writeln!(out, "{bt}").unwrap();
    out
}

/// Installs a Rust panic hook that prints a ZeroSum crash report to
/// stderr before delegating to the previous hook — the Rust-native
/// equivalent of the paper's signal handler. Returns nothing; safe to
/// call once at startup.
pub fn install_panic_hook(rank: Option<u32>) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let report = crash_report(AbnormalExit::Abort, std::process::id(), rank);
        // Write directly (not via `eprintln!`) so a closed stderr cannot
        // turn the crash report itself into a second panic.
        use std::io::Write as _;
        let _ = writeln!(std::io::stderr(), "{report}");
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_names() {
        assert_eq!(AbnormalExit::SegmentationViolation.signal_name(), "SIGSEGV");
        assert_eq!(AbnormalExit::BusError.signal_name(), "SIGBUS");
        assert_eq!(AbnormalExit::Abort.signal_name(), "SIGABRT");
    }

    #[test]
    fn crash_report_contains_identity_and_backtrace_header() {
        let rep = crash_report(AbnormalExit::SegmentationViolation, 4242, Some(3));
        assert!(rep.contains("SIGSEGV"));
        assert!(rep.contains("MPI 003 - PID 4242"));
        assert!(rep.contains("backtrace follows"));
    }

    #[test]
    fn crash_report_without_rank() {
        let rep = crash_report(AbnormalExit::FloatingPointException, 7, None);
        assert!(rep.contains("PID 7"));
        assert!(!rep.contains("MPI"));
    }
}
