//! Hardware-thread (CPU) utilization tracking from `/proc/stat` deltas.
//!
//! §3.4 of the paper: the HWT report lists, for every hardware thread in
//! the process affinity list, the percentage of time idle, in system
//! calls, and executing user code. Percentages are computed from
//! consecutive jiffy-counter snapshots.

use zerosum_proc::SystemStat;
use zerosum_stats::Ring;

/// One per-interval utilization observation for one CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwtSample {
    /// Sample time, seconds from start.
    pub t_s: f64,
    /// Fraction of the interval idle, percent.
    pub idle_pct: f64,
    /// Fraction in kernel mode, percent.
    pub system_pct: f64,
    /// Fraction in user mode, percent.
    pub user_pct: f64,
}

/// Utilization history for every CPU on the node.
#[derive(Debug)]
pub struct HwtTracker {
    prev: Option<SystemStat>,
    /// `(os_index, samples)` per CPU, in `/proc/stat` order. Each series
    /// is a bounded ring (2:1 downsample on wrap) so a multi-hour run
    /// holds constant memory; `overall` uses only the first/latest
    /// snapshots and is unaffected by downsampling.
    cpus: Vec<(u32, Ring<HwtSample>)>,
    /// Cumulative totals from the first to the latest snapshot.
    first: Option<SystemStat>,
    /// Ring capacity for per-CPU series.
    capacity: usize,
}

impl Default for HwtTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl HwtTracker {
    /// An empty tracker with the default series capacity.
    pub fn new() -> Self {
        Self::with_capacity(zerosum_stats::DEFAULT_SERIES_CAPACITY)
    }

    /// An empty tracker whose per-CPU series hold at most `capacity`
    /// samples.
    pub fn with_capacity(capacity: usize) -> Self {
        HwtTracker {
            prev: None,
            cpus: Vec::new(),
            first: None,
            capacity,
        }
    }

    /// Folds a `/proc/stat` snapshot taken at `t_s` seconds.
    pub fn observe(&mut self, t_s: f64, stat: &SystemStat) {
        if self.first.is_none() {
            self.first = Some(stat.clone());
        }
        if let Some(prev) = &self.prev {
            for (idx, times) in &stat.cpus {
                let Some((_, prev_times)) = prev.cpus.iter().find(|(i, _)| i == idx) else {
                    continue;
                };
                let d = times.delta(prev_times);
                let total = d.total();
                let pos = match self.cpus.iter().position(|(i, _)| i == idx) {
                    Some(p) => p,
                    None => {
                        self.cpus.push((*idx, Ring::with_capacity(self.capacity)));
                        self.cpus.len() - 1
                    }
                };
                // `pos` is valid by construction; stay panic-free in
                // the sampling loop regardless.
                let Some((_, entry)) = self.cpus.get_mut(pos) else {
                    continue;
                };
                let pct = |x: u64| {
                    if total == 0 {
                        0.0
                    } else {
                        x as f64 * 100.0 / total as f64
                    }
                };
                entry.push(HwtSample {
                    t_s,
                    idle_pct: pct(d.idle + d.iowait),
                    system_pct: pct(d.system + d.irq + d.softirq),
                    user_pct: pct(d.user + d.nice),
                });
            }
        } else {
            for (idx, _) in &stat.cpus {
                self.cpus.push((*idx, Ring::with_capacity(self.capacity)));
            }
        }
        // Reuse the previous snapshot's cpu vector rather than cloning a
        // fresh one every sample.
        match &mut self.prev {
            Some(prev) => prev.clone_from(stat),
            None => self.prev = Some(stat.clone()),
        }
    }

    /// Overall utilization of one CPU across the whole run:
    /// `(idle%, system%, user%)` — the HWT report row.
    pub fn overall(&self, os_index: u32) -> Option<(f64, f64, f64)> {
        let first = self.first.as_ref()?;
        let last = self.prev.as_ref()?;
        let f = first.cpus.iter().find(|(i, _)| *i == os_index)?;
        let l = last.cpus.iter().find(|(i, _)| *i == os_index)?;
        let d = l.1.delta(&f.1);
        let total = d.total();
        if total == 0 {
            return Some((100.0, 0.0, 0.0));
        }
        let pct = |x: u64| x as f64 * 100.0 / total as f64;
        Some((
            pct(d.idle + d.iowait),
            pct(d.system + d.irq + d.softirq),
            pct(d.user + d.nice),
        ))
    }

    /// Per-interval history of one CPU (Figure 7's series).
    pub fn samples(&self, os_index: u32) -> Option<&[HwtSample]> {
        self.cpus
            .iter()
            .find(|(i, _)| *i == os_index)
            .map(|(_, v)| v.as_slice())
    }

    /// All tracked CPU OS indices.
    pub fn cpu_indices(&self) -> Vec<u32> {
        self.cpus.iter().map(|(i, _)| *i).collect()
    }

    /// Number of delta samples per CPU (0 before two snapshots).
    pub fn sample_count(&self) -> usize {
        self.cpus.first().map(|(_, v)| v.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_proc::CpuTimes;

    fn stat(rows: &[(u32, u64, u64, u64)]) -> SystemStat {
        let cpus: Vec<(u32, CpuTimes)> = rows
            .iter()
            .map(|&(i, u, s, idle)| {
                (
                    i,
                    CpuTimes {
                        user: u,
                        system: s,
                        idle,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let total = cpus
            .iter()
            .fold(CpuTimes::default(), |acc, (_, t)| acc.add(t));
        SystemStat {
            total,
            cpus,
            ctxt: 0,
            processes: 0,
        }
    }

    #[test]
    fn percentages_from_deltas() {
        let mut tr = HwtTracker::new();
        tr.observe(0.0, &stat(&[(0, 0, 0, 0), (1, 0, 0, 0)]));
        tr.observe(1.0, &stat(&[(0, 64, 12, 24), (1, 0, 0, 100)]));
        let s0 = tr.samples(0).unwrap();
        assert_eq!(s0.len(), 1);
        assert!((s0[0].user_pct - 64.0).abs() < 1e-9);
        assert!((s0[0].system_pct - 12.0).abs() < 1e-9);
        assert!((s0[0].idle_pct - 24.0).abs() < 1e-9);
        let s1 = tr.samples(1).unwrap();
        assert!((s1[0].idle_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn overall_spans_whole_run() {
        let mut tr = HwtTracker::new();
        tr.observe(0.0, &stat(&[(0, 0, 0, 0)]));
        tr.observe(1.0, &stat(&[(0, 100, 0, 0)]));
        tr.observe(2.0, &stat(&[(0, 100, 0, 100)]));
        let (idle, system, user) = tr.overall(0).unwrap();
        assert!((user - 50.0).abs() < 1e-9);
        assert!((idle - 50.0).abs() < 1e-9);
        assert_eq!(system, 0.0);
    }

    #[test]
    fn unknown_cpu_is_none() {
        let mut tr = HwtTracker::new();
        tr.observe(0.0, &stat(&[(0, 0, 0, 0)]));
        tr.observe(1.0, &stat(&[(0, 1, 0, 9)]));
        assert!(tr.overall(7).is_none());
        assert!(tr.samples(7).is_none());
    }

    #[test]
    fn single_snapshot_has_no_samples() {
        let mut tr = HwtTracker::new();
        tr.observe(0.0, &stat(&[(0, 5, 5, 5)]));
        assert_eq!(tr.sample_count(), 0);
        // overall with first == last: zero delta ⇒ treated as fully idle.
        assert_eq!(tr.overall(0), Some((100.0, 0.0, 0.0)));
    }

    #[test]
    fn series_stay_bounded_and_overall_is_exact_after_wrap() {
        let mut tr = HwtTracker::with_capacity(16);
        for t in 0..200u64 {
            tr.observe(t as f64, &stat(&[(0, t * 10, 0, t * 10)]));
        }
        // The ring wrapped many times but never exceeds its capacity...
        assert!(tr.sample_count() <= 16);
        let s = tr.samples(0).unwrap();
        assert!((s[0].t_s - 1.0).abs() < 1e-9, "first delta sample kept");
        assert!((s[s.len() - 1].t_s - 199.0).abs() < 1e-9, "latest kept");
        // ...and overall uses only the first/latest snapshots, so it is
        // unaffected by downsampling: 50/50 user/idle.
        let (idle, system, user) = tr.overall(0).unwrap();
        assert!((user - 50.0).abs() < 1e-9);
        assert!((idle - 50.0).abs() < 1e-9);
        assert_eq!(system, 0.0);
    }

    #[test]
    fn idle_includes_iowait_and_system_includes_irq() {
        let mut tr = HwtTracker::new();
        let mk = |io: u64, irq: u64| {
            let mut t = CpuTimes {
                user: 10,
                system: 10,
                idle: 10,
                ..Default::default()
            };
            t.iowait = io;
            t.irq = irq;
            SystemStat {
                total: t,
                cpus: vec![(0, t)],
                ctxt: 0,
                processes: 0,
            }
        };
        tr.observe(0.0, &mk(0, 0));
        tr.observe(1.0, &mk(10, 10));
        let s = tr.samples(0).unwrap()[0];
        // Delta: iowait 10 (idle bucket), irq 10 (system bucket).
        assert!((s.idle_pct - 50.0).abs() < 1e-9);
        assert!((s.system_pct - 50.0).abs() < 1e-9);
        assert_eq!(s.user_pct, 0.0);
    }
}
