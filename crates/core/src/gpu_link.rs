//! Bridging the scheduler simulation's GPU activity into the SMI-style
//! monitoring stack.
//!
//! The scheduler's device queues provide ground truth (busy time, memory
//! footprint); `zerosum-gpu`'s simulated ROCm SMI/NVML backends turn a
//! busy fraction into the full Listing 2 metric set. [`SimGpuLink`] owns
//! both ends: each period it diffs device snapshots from the
//! [`NodeSim`], feeds the per-window busy fractions to the backend, and
//! folds the synthesized samples into a [`GpuMonitor`].

use crate::sync::{Tracked, TrackedGuard};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::PoisonError;
use zerosum_gpu::{ActivityFeed, GpuMonitor, SmiSim};
use zerosum_sched::NodeSim;

/// Locks a mutex, recovering the data if a panicking holder poisoned it.
fn lock_unpoisoned<T>(m: &Tracked<T>) -> TrackedGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared per-slot `(busy_fraction, mem_used_bytes)` the runner updates
/// and the backend reads.
#[derive(Debug, Default)]
struct FrameData {
    slots: HashMap<u32, (f64, u64)>,
}

/// An [`ActivityFeed`] backed by runner-updated frame data.
#[derive(Clone)]
pub struct SharedFeed {
    data: Arc<Tracked<FrameData>>,
}

impl ActivityFeed for SharedFeed {
    fn busy_fraction(&mut self, device: u32) -> f64 {
        lock_unpoisoned(&self.data)
            .slots
            .get(&device)
            .map(|v| v.0)
            .unwrap_or(0.0)
    }

    fn mem_used_bytes(&mut self, device: u32) -> u64 {
        lock_unpoisoned(&self.data)
            .slots
            .get(&device)
            .map(|v| v.1)
            .unwrap_or(0)
    }
}

/// Which vendor stack to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuStack {
    /// ROCm SMI over MI250X GCDs (Frontier).
    RocmMi250x,
    /// NVML over A100s (Perlmutter).
    NvmlA100,
    /// NVML over V100s (Summit).
    NvmlV100,
    /// Level Zero over PVC (Aurora).
    LevelZeroPvc,
}

/// The simulation-side GPU monitoring assembly.
pub struct SimGpuLink {
    /// The accumulated min/mean/max statistics.
    pub monitor: GpuMonitor,
    backend: SmiSim,
    data: Arc<Tracked<FrameData>>,
    /// Physical device indices, slot-ordered.
    devices: Vec<u32>,
    prev_busy_us: Vec<u64>,
}

impl SimGpuLink {
    /// Builds the link for the given physical `devices` on `stack`.
    pub fn new(stack: GpuStack, devices: Vec<u32>) -> Self {
        let data = Arc::new(Tracked::new(
            "core.gpu_link.frame_data",
            FrameData::default(),
        ));
        let feed = Box::new(SharedFeed {
            data: Arc::clone(&data),
        });
        let n = devices.len();
        let backend = match stack {
            GpuStack::RocmMi250x => SmiSim::rocm_mi250x(n, feed),
            GpuStack::NvmlA100 => SmiSim::nvml_a100(n, feed),
            GpuStack::NvmlV100 => SmiSim::nvml_v100(n, feed),
            GpuStack::LevelZeroPvc => SmiSim::levelzero_pvc(n, feed),
        };
        SimGpuLink {
            monitor: GpuMonitor::new(n),
            backend,
            data,
            prev_busy_us: vec![0; devices.len()],
            devices,
        }
    }

    /// The physical devices monitored, slot-ordered.
    pub fn devices(&self) -> &[u32] {
        &self.devices
    }

    /// One monitoring period: snapshot the simulator's device queues,
    /// compute per-window busy fractions, and fold an SMI sample per
    /// device.
    pub fn poll(&mut self, sim: &mut NodeSim, dt_s: f64) {
        {
            let mut data = lock_unpoisoned(&self.data);
            for (slot, &phys) in self.devices.iter().enumerate() {
                let snap = sim.device_snapshot(phys);
                let delta = snap.busy_us.saturating_sub(self.prev_busy_us[slot]);
                self.prev_busy_us[slot] = snap.busy_us;
                let frac = if dt_s > 0.0 {
                    (delta as f64 / (dt_s * 1e6)).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                data.slots.insert(slot as u32, (frac, snap.mem_used_bytes));
            }
        }
        self.monitor.poll(&mut self.backend, dt_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_gpu::GpuMetricKind;
    use zerosum_sched::{Behavior, OffloadSpec, SchedParams, WorkerSpec};
    use zerosum_topology::{presets, CpuSet};

    #[test]
    fn link_tracks_sim_gpu_activity() {
        let mut sim = NodeSim::new(presets::frontier(), SchedParams::default());
        let spec = WorkerSpec {
            iterations: 50,
            work_per_iter_us: 5_000,
            noise_frac: 0.0,
            sys_per_iter_us: 100,
            leader_extra_us: 0,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader: false,
            barrier: None,
            offload: Some(OffloadSpec {
                device: 4,
                launch_us: 100,
                kernel_us: 3_000,
                sync_us: 50,
                bytes: 4 << 30,
            }),
        };
        sim.spawn_process("gpuapp", CpuSet::single(1), 1_024, Behavior::worker(spec));
        let mut link = SimGpuLink::new(GpuStack::RocmMi250x, vec![4, 5]);
        for _ in 0..5 {
            sim.run_for(100_000);
            link.poll(&mut sim, 0.1);
        }
        // Device 4 (slot 0) is active: busy between 0 and 100%.
        let (_, avg, max) = link.monitor.summary(0, GpuMetricKind::DeviceBusyPct);
        assert!(avg > 5.0 && max <= 100.0, "avg {avg}, max {max}");
        // Device 5 (slot 1) is idle.
        let (_, avg5, _) = link.monitor.summary(1, GpuMetricKind::DeviceBusyPct);
        assert!(avg5 < 1.0, "avg5 {avg5}");
        // VRAM footprint visible.
        let (_, _, vram) = link.monitor.summary(0, GpuMetricKind::UsedVramBytes);
        assert_eq!(vram, (4u64 << 30) as f64);
    }

    #[test]
    fn idle_link_reports_floor() {
        let mut sim = NodeSim::new(presets::frontier(), SchedParams::default());
        let mut link = SimGpuLink::new(GpuStack::RocmMi250x, vec![0]);
        sim.run_for(100_000);
        link.poll(&mut sim, 0.1);
        let (min, _, max) = link.monitor.summary(0, GpuMetricKind::PowerAverage);
        assert_eq!(min, 90.0); // MI250X idle power
        assert_eq!(max, 90.0);
    }
}
