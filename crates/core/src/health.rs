//! Sampling-health accounting: the ledger of what the monitor saw,
//! retried, interpolated, dropped, and quarantined.
//!
//! §3.1.1 of the paper requires the monitor to *tolerate* a hostile
//! `/proc`; this module makes the toleration auditable. Every
//! [`zerosum_proc::SourceError`] the monitor receives is tallied by kind
//! in a [`HealthLedger`], and every task-record slot in a sampling round
//! ends in exactly one of: observed ok, recovered by retry, degraded
//! (interpolated from the last good sample), or dropped. The chaos
//! harness reconciles these tallies *exactly* against the fault
//! injector's log — an unexplained error is a bug.

use crate::config::ResilienceConfig;
use std::collections::HashMap;
use zerosum_proc::{SourceErrorKind, TaskStat, TaskStatus, Tid};

/// Aggregated sampling-health counters for one process (or for the
/// node-level records when held by the monitor itself).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthLedger {
    /// Task records observed cleanly (both `stat` and `status` read).
    pub ok: u64,
    /// Reads that succeeded only after one or more retries.
    pub retried: u64,
    /// Task-record slots filled by last-good-sample interpolation.
    pub degraded: u64,
    /// Task-record slots lost entirely (no last-good sample to fall
    /// back on, or interpolation disabled).
    pub dropped: u64,
    /// Transitions of a tid into quarantine.
    pub quarantine_events: u64,
    /// Re-probe attempts of quarantined tids.
    pub reprobes: u64,
    /// Virtual-time µs of retry backoff charged to the monitor.
    pub backoff_us: u64,
    /// Every [`zerosum_proc::SourceError`] received, by
    /// [`SourceErrorKind::index`] — including each failed retry attempt,
    /// so these totals reconcile 1:1 against an injector's fault log.
    pub errors_by_kind: [u64; 4],
}

impl HealthLedger {
    /// Tallies one received error.
    pub fn note_error(&mut self, kind: SourceErrorKind) {
        // Bounds-tolerant: a kind the array does not know about is
        // dropped rather than panicking inside the sampling loop.
        if let Some(slot) = self.errors_by_kind.get_mut(kind.index()) {
            *slot += 1;
        }
    }

    /// Total errors received, all kinds.
    pub fn errors_total(&self) -> u64 {
        self.errors_by_kind.iter().sum()
    }

    /// Errors of one kind.
    pub fn errors_of(&self, kind: SourceErrorKind) -> u64 {
        self.errors_by_kind.get(kind.index()).copied().unwrap_or(0)
    }

    /// Adds another ledger's tallies into this one (used to aggregate
    /// process ledgers with the node ledger for reports and
    /// reconciliation).
    pub fn merge(&mut self, other: &HealthLedger) {
        self.ok += other.ok;
        self.retried += other.retried;
        self.degraded += other.degraded;
        self.dropped += other.dropped;
        self.quarantine_events += other.quarantine_events;
        self.reprobes += other.reprobes;
        self.backoff_us += other.backoff_us;
        for i in 0..self.errors_by_kind.len() {
            self.errors_by_kind[i] += other.errors_by_kind[i];
        }
    }

    /// True if nothing abnormal was ever recorded.
    pub fn is_clean(&self) -> bool {
        self.retried == 0
            && self.degraded == 0
            && self.dropped == 0
            && self.quarantine_events == 0
            && self.errors_total() == 0
    }
}

/// Per-tid failure-tracking state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskFailState {
    /// Consecutive sampling rounds in which this tid's reads failed.
    pub consecutive: u32,
    /// The tid is quarantined: reads are skipped until re-probe.
    pub quarantined: bool,
    /// Rounds remaining before a quarantined tid is re-probed.
    pub rounds_until_reprobe: u32,
}

/// What the monitor should do with a task slot whose reads failed this
/// round.
#[derive(Debug)]
pub enum FailureAction {
    /// Fill the slot from the last good `(stat, status)` pair, flagged
    /// degraded in the ledger.
    Interpolate(Box<(TaskStat, TaskStatus)>),
    /// No fallback available (or interpolation disabled): drop the slot.
    Drop,
}

/// The per-process health state: the public [`HealthLedger`] plus the
/// private quarantine and last-good-sample machinery behind it.
#[derive(Debug, Default)]
pub struct ProcessHealth {
    /// The public tallies.
    pub ledger: HealthLedger,
    states: HashMap<Tid, TaskFailState>,
    last_good: HashMap<Tid, (TaskStat, TaskStatus)>,
}

impl ProcessHealth {
    /// Creates an empty health record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Called once per round per listed tid, *before* reading it.
    /// Returns `true` if the tid is quarantined and not yet due for a
    /// re-probe — the caller must skip it this round. Returns `false`
    /// when the tid is healthy or due for a re-probe (which is tallied).
    pub fn should_skip(&mut self, tid: Tid) -> bool {
        let st = self.states.entry(tid).or_default();
        if !st.quarantined {
            return false;
        }
        if st.rounds_until_reprobe > 0 {
            st.rounds_until_reprobe -= 1;
            return true;
        }
        self.ledger.reprobes += 1;
        false
    }

    /// Records a clean observation: clears any failure state (ending a
    /// quarantine if the re-probe succeeded) and stores the records as
    /// the new last-good sample.
    pub fn record_success(&mut self, tid: Tid, stat: &TaskStat, status: &TaskStatus) {
        self.ledger.ok += 1;
        self.states.insert(tid, TaskFailState::default());
        // `clone_from` into the existing pair reuses its string and
        // cpuset buffers — this runs once per tid per round.
        match self.last_good.entry(tid) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (s, st) = e.get_mut();
                s.clone_from(stat);
                st.clone_from(status);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((stat.clone(), status.clone()));
            }
        }
    }

    /// The last cleanly observed `(stat, status)` pair for a tid, if any.
    /// Delta sampling re-uses it for threads that provably have not run.
    pub fn last_good(&self, tid: Tid) -> Option<&(TaskStat, TaskStatus)> {
        self.last_good.get(&tid)
    }

    /// Records a failed slot (reads exhausted retries or failed
    /// unretryably). Advances the quarantine state machine and decides
    /// between interpolation and dropping.
    pub fn record_failure(&mut self, tid: Tid, cfg: &ResilienceConfig) -> FailureAction {
        let st = self.states.entry(tid).or_default();
        st.consecutive += 1;
        if st.quarantined {
            // A failed re-probe: back to sleep for another window.
            st.rounds_until_reprobe = cfg.reprobe_after;
        } else if st.consecutive >= cfg.quarantine_after {
            st.quarantined = true;
            st.rounds_until_reprobe = cfg.reprobe_after;
            self.ledger.quarantine_events += 1;
        }
        match self.last_good.get(&tid) {
            Some(pair) if cfg.interpolate => {
                self.ledger.degraded += 1;
                FailureAction::Interpolate(Box::new(pair.clone()))
            }
            _ => {
                self.ledger.dropped += 1;
                FailureAction::Drop
            }
        }
    }

    /// Forgets a tid that exited normally (`NotFound` on a per-task
    /// read): its failure state and last-good sample are irrelevant now.
    pub fn forget(&mut self, tid: Tid) {
        self.states.remove(&tid);
        self.last_good.remove(&tid);
    }

    /// Number of tids currently quarantined.
    pub fn quarantined_now(&self) -> usize {
        self.states.values().filter(|s| s.quarantined).count()
    }

    /// The failure state of a tid, if any was ever recorded.
    pub fn fail_state(&self, tid: Tid) -> Option<TaskFailState> {
        self.states.get(&tid).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_proc::TaskState;

    fn cfg() -> ResilienceConfig {
        ResilienceConfig {
            quarantine_after: 3,
            reprobe_after: 2,
            ..Default::default()
        }
    }

    fn stat(tid: Tid) -> TaskStat {
        TaskStat {
            tid,
            comm: "t".into(),
            state: TaskState::Running,
            minflt: 0,
            majflt: 0,
            utime: 5,
            stime: 1,
            nice: 0,
            num_threads: 1,
            processor: 0,
            nswap: 0,
            starttime: 0,
        }
    }

    fn status(tid: Tid) -> TaskStatus {
        TaskStatus {
            name: "t".into(),
            tid,
            tgid: tid,
            state: TaskState::Running,
            vm_rss_kib: 100,
            vm_size_kib: 200,
            vm_hwm_kib: 100,
            cpus_allowed: Default::default(),
            voluntary_ctxt_switches: 0,
            nonvoluntary_ctxt_switches: 0,
        }
    }

    #[test]
    fn failure_without_history_drops_with_history_interpolates() {
        let mut h = ProcessHealth::new();
        assert!(matches!(h.record_failure(9, &cfg()), FailureAction::Drop));
        h.record_success(9, &stat(9), &status(9));
        match h.record_failure(9, &cfg()) {
            FailureAction::Interpolate(pair) => assert_eq!(pair.0.utime, 5),
            other => panic!("expected interpolation, got {other:?}"),
        }
        assert_eq!(h.ledger.dropped, 1);
        assert_eq!(h.ledger.degraded, 1);
        assert_eq!(h.ledger.ok, 1);
    }

    #[test]
    fn interpolation_can_be_disabled() {
        let mut h = ProcessHealth::new();
        h.record_success(9, &stat(9), &status(9));
        let off = ResilienceConfig {
            interpolate: false,
            ..cfg()
        };
        assert!(matches!(h.record_failure(9, &off), FailureAction::Drop));
        assert_eq!(h.ledger.dropped, 1);
    }

    #[test]
    fn quarantine_engages_after_threshold_and_reprobes() {
        let mut h = ProcessHealth::new();
        let c = cfg();
        // Three consecutive failures → quarantined.
        for _ in 0..3 {
            assert!(!h.should_skip(9));
            h.record_failure(9, &c);
        }
        assert_eq!(h.ledger.quarantine_events, 1);
        assert_eq!(h.quarantined_now(), 1);
        // Skipped for reprobe_after rounds, then re-probed.
        assert!(h.should_skip(9));
        assert!(h.should_skip(9));
        assert!(!h.should_skip(9), "due for re-probe");
        assert_eq!(h.ledger.reprobes, 1);
        // Failed re-probe re-arms the window.
        h.record_failure(9, &c);
        assert!(h.should_skip(9));
        assert!(h.should_skip(9));
        assert!(!h.should_skip(9));
        // Successful re-probe clears the quarantine.
        h.record_success(9, &stat(9), &status(9));
        assert_eq!(h.quarantined_now(), 0);
        assert!(!h.should_skip(9));
        assert_eq!(h.ledger.quarantine_events, 1, "no re-entry counted yet");
    }

    #[test]
    fn ledger_merges_and_reports_cleanliness() {
        let mut a = HealthLedger::default();
        assert!(a.is_clean());
        a.note_error(SourceErrorKind::Io);
        a.note_error(SourceErrorKind::Io);
        a.note_error(SourceErrorKind::Denied);
        let mut b = HealthLedger {
            ok: 5,
            retried: 1,
            ..Default::default()
        };
        b.merge(&a);
        assert_eq!(b.errors_of(SourceErrorKind::Io), 2);
        assert_eq!(b.errors_total(), 3);
        assert!(!b.is_clean());
    }

    #[test]
    fn forget_clears_state_and_history() {
        let mut h = ProcessHealth::new();
        h.record_success(9, &stat(9), &status(9));
        h.record_failure(9, &cfg());
        h.forget(9);
        assert!(h.fail_state(9).is_none());
        assert!(matches!(h.record_failure(9, &cfg()), FailureAction::Drop));
    }
}
