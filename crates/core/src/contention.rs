//! The contention report (§3.5).
//!
//! Quantifies the contention signals the paper identifies: non-voluntary
//! context switches (time-slicing pressure), system-call share (limited
//! resources), affinity overlaps between busy LWPs (over-subscription of
//! hardware threads), and memory pressure with attribution.

use crate::memory::MemPressureSource;
use crate::monitor::{Monitor, ProcessWatch};
use std::fmt::Write as _;
use zerosum_proc::{Pid, Tid};

/// A busy LWP is one on CPU for at least this fraction of wall time
/// between its first and last samples: filters idle helper threads out
/// of over-subscription analysis.
pub const BUSY_CPU_FRACTION: f64 = 0.10;

/// Contention metrics for one LWP.
#[derive(Debug, Clone)]
pub struct LwpContention {
    /// Thread id.
    pub tid: Tid,
    /// Total non-voluntary context switches.
    pub nvcsw: u64,
    /// Total voluntary context switches.
    pub vcsw: u64,
    /// Share of CPU time spent in system calls, percent.
    pub sys_share_pct: f64,
    /// Busy LWPs whose affinity overlaps this one's.
    pub overlaps_with: Vec<Tid>,
    /// Whether this LWP counts as busy.
    pub busy: bool,
    /// Runqueue wait observed via `schedstat`, seconds (when exposed).
    pub wait_s: Option<f64>,
}

/// The contention analysis of one process.
#[derive(Debug, Clone)]
pub struct ContentionReport {
    /// Per-LWP rows (busy and idle alike).
    pub lwps: Vec<LwpContention>,
    /// Hardware threads claimed by more than one busy LWP, with the
    /// claimants.
    pub contended_hwts: Vec<(u32, Vec<Tid>)>,
    /// Busy LWPs per hardware thread of the process mask.
    pub oversubscription: f64,
    /// Memory-pressure diagnosis at the end of the run.
    pub memory: MemPressureSource,
}

/// Analyzes one monitored process.
pub fn analyze(monitor: &Monitor, pid: Pid) -> Option<ContentionReport> {
    let watch = monitor.process(pid)?;
    Some(analyze_watch(watch, monitor))
}

fn analyze_watch(watch: &ProcessWatch, monitor: &Monitor) -> ContentionReport {
    // Gather busy flags and affinities.
    let tracks: Vec<_> = watch.lwps.tracks().collect();
    let busy: Vec<bool> = tracks
        .iter()
        .map(|t| t.cpu_fraction() >= BUSY_CPU_FRACTION)
        .collect();
    // Per-HWT claim counts over busy, *bound-ish* LWPs: an LWP claims the
    // HWTs of its affinity mask. Unbound threads (mask == whole process
    // mask with more HWTs than busy threads) claim nothing specific.
    let mut claims: Vec<(u32, Vec<Tid>)> = Vec::new();
    for (t, &is_busy) in tracks.iter().zip(&busy) {
        if !is_busy {
            continue;
        }
        for hwt in t.affinity.iter() {
            match claims.iter_mut().find(|(h, _)| *h == hwt) {
                Some((_, v)) => v.push(t.tid),
                None => claims.push((hwt, vec![t.tid])),
            }
        }
    }
    // An HWT is contended if more busy LWPs *must* share it than it can
    // serve: every claimant whose whole mask is that single HWT, or —
    // when masks are wider — when the number of busy claimants exceeds
    // the size of the union of their masks is handled by the
    // oversubscription ratio below. For the per-HWT view we flag HWTs
    // claimed exclusively (mask width 1) by ≥2 LWPs, the Table 1 / Table
    // 3-monitor case.
    let mut contended: Vec<(u32, Vec<Tid>)> = Vec::new();
    for (hwt, claimants) in &claims {
        let exclusive: Vec<Tid> = claimants
            .iter()
            .copied()
            .filter(|tid| {
                tracks
                    .iter()
                    .find(|t| t.tid == *tid)
                    .map(|t| t.affinity.count() == 1)
                    .unwrap_or(false)
            })
            .collect();
        if exclusive.len() >= 2 {
            contended.push((*hwt, exclusive));
        }
    }
    contended.sort_by_key(|(h, _)| *h);
    // Oversubscription ratio: busy LWPs / process-mask HWTs.
    let busy_count = busy.iter().filter(|&&b| b).count();
    let mask_width = watch.cpus_allowed.count().max(1);
    let oversubscription = busy_count as f64 / mask_width as f64;
    // Pairwise overlaps among busy LWPs.
    let lwps = tracks
        .iter()
        .zip(&busy)
        .map(|(t, &is_busy)| {
            let overlaps_with = if is_busy {
                tracks
                    .iter()
                    .zip(&busy)
                    .filter(|(o, &ob)| ob && o.tid != t.tid && o.affinity.intersects(&t.affinity))
                    .map(|(o, _)| o.tid)
                    .collect()
            } else {
                Vec::new()
            };
            let (u, s) = (t.avg_utime_per_period(), t.avg_stime_per_period());
            LwpContention {
                tid: t.tid,
                nvcsw: t.total_nvcsw(),
                vcsw: t.total_vcsw(),
                sys_share_pct: if u + s > 0.0 {
                    s * 100.0 / (u + s)
                } else {
                    0.0
                },
                overlaps_with,
                busy: is_busy,
                wait_s: t.total_wait_s(),
            }
        })
        .collect();
    ContentionReport {
        lwps,
        contended_hwts: contended,
        oversubscription,
        memory: monitor.mem.pressure(),
    }
}

impl ContentionReport {
    /// True if any hardware thread is over-subscribed by bound busy LWPs.
    pub fn has_hwt_contention(&self) -> bool {
        !self.contended_hwts.is_empty()
    }

    /// Total non-voluntary switches across all LWPs.
    pub fn total_nvcsw(&self) -> u64 {
        self.lwps.iter().map(|l| l.nvcsw).sum()
    }

    /// Renders the human-readable contention section.
    pub fn render(&self) -> String {
        let mut out = String::from("Contention Summary:\n");
        writeln!(
            out,
            "  busy LWPs per allowed HWT: {:.2}{}",
            self.oversubscription,
            if self.oversubscription > 1.0 {
                "  (OVER-SUBSCRIBED)"
            } else {
                ""
            }
        )
        .unwrap();
        for (hwt, tids) in &self.contended_hwts {
            let list: Vec<String> = tids.iter().map(|t| t.to_string()).collect();
            writeln!(out, "  HWT {hwt} shared by busy LWPs: {}", list.join(", ")).unwrap();
        }
        for l in &self.lwps {
            if l.nvcsw > 0 || l.busy {
                writeln!(
                    out,
                    "  LWP {}: nv_ctx {}, ctx {}, system share {:.1}%{}{}",
                    l.tid,
                    l.nvcsw,
                    l.vcsw,
                    l.sys_share_pct,
                    l.wait_s
                        .map(|w| format!(", runqueue wait {w:.2}s"))
                        .unwrap_or_default(),
                    if l.overlaps_with.is_empty() {
                        String::new()
                    } else {
                        format!(
                            ", affinity overlaps {}",
                            l.overlaps_with
                                .iter()
                                .map(|t| t.to_string())
                                .collect::<Vec<_>>()
                                .join(",")
                        )
                    }
                )
                .unwrap();
            }
        }
        match self.memory {
            MemPressureSource::None => {}
            MemPressureSource::Application => {
                out.push_str("  MEMORY: application near node memory limit\n")
            }
            MemPressureSource::External => {
                out.push_str("  MEMORY: node memory exhausted by processes outside this job\n")
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZeroSumConfig;
    use crate::monitor::ProcessInfo;
    use zerosum_sched::{Behavior, NodeSim, SchedParams, SimProcSource};
    use zerosum_topology::presets;
    use zerosum_topology::CpuSet;

    fn run_case(shared_core: bool) -> (Monitor, Pid) {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let mask = if shared_core {
            CpuSet::single(0)
        } else {
            CpuSet::from_indices([0u32, 1])
        };
        let pid = sim.spawn_process(
            "app",
            mask,
            1_024,
            Behavior::FiniteCompute {
                remaining_us: 4_000_000,
                chunk_us: 10_000,
            },
        );
        let worker_mask = if shared_core {
            CpuSet::single(0)
        } else {
            CpuSet::single(1)
        };
        sim.spawn_task(
            pid,
            "OpenMP",
            Some(worker_mask),
            Behavior::FiniteCompute {
                remaining_us: 4_000_000,
                chunk_us: 10_000,
            },
            false,
        );
        let mut mon = Monitor::new(ZeroSumConfig::default());
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(0),
            hostname: "n".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        for i in 1..=4u64 {
            sim.run_for(1_000_000);
            mon.sample(i as f64, &SimProcSource::new(&sim));
        }
        (mon, pid)
    }

    #[test]
    fn shared_core_is_flagged() {
        let (mon, pid) = run_case(true);
        let rep = analyze(&mon, pid).unwrap();
        assert!(rep.has_hwt_contention());
        assert_eq!(rep.contended_hwts[0].0, 0);
        assert_eq!(rep.contended_hwts[0].1.len(), 2);
        assert!(rep.oversubscription > 1.5);
        assert!(rep.total_nvcsw() > 0);
        let text = rep.render();
        assert!(text.contains("OVER-SUBSCRIBED"));
        assert!(text.contains("HWT 0 shared by busy LWPs"));
    }

    #[test]
    fn separate_cores_are_clean() {
        let (mon, pid) = run_case(false);
        let rep = analyze(&mon, pid).unwrap();
        assert!(!rep.has_hwt_contention());
        assert!(rep.oversubscription <= 1.0);
        // Bound to different cores: low nvcsw.
        assert!(rep.total_nvcsw() < 10, "nvcsw {}", rep.total_nvcsw());
    }

    #[test]
    fn overlap_listing_for_shared_masks() {
        let (mon, pid) = run_case(true);
        let rep = analyze(&mon, pid).unwrap();
        let busy: Vec<_> = rep.lwps.iter().filter(|l| l.busy).collect();
        assert_eq!(busy.len(), 2);
        assert!(busy.iter().all(|l| l.overlaps_with.len() == 1));
    }

    #[test]
    fn unknown_pid_is_none() {
        let (mon, _) = run_case(false);
        assert!(analyze(&mon, 31337).is_none());
    }
}
