//! Live self-monitoring on a real Linux system.
//!
//! The paper's ZeroSum is injected via `LD_PRELOAD` and spawns an
//! asynchronous thread at startup. A Rust application links this crate
//! instead and calls [`SelfMonitor::start`]: a background thread samples
//! the *calling process* through the real `/proc` at the configured
//! period until [`SelfMonitor::stop`] collects the monitor and its data.
//! This is the "always-on monitoring library" usage mode.

use crate::config::ZeroSumConfig;
use crate::monitor::{Monitor, ProcessInfo};
use crate::sync::{Tracked, TrackedGuard};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::PoisonError;
use std::time::{Duration, Instant};
use zerosum_proc::{LinuxProc, ProcSource as _, SourceError};

/// A running self-monitoring session.
pub struct SelfMonitor {
    stop: Arc<AtomicBool>,
    shared: Arc<Tracked<Monitor>>,
    handle: Option<std::thread::JoinHandle<()>>,
    started: Instant,
}

/// Locks a mutex, recovering the data if a panicking holder poisoned it
/// (the monitor must keep working even if the monitored app misbehaves).
fn lock_unpoisoned<T>(m: &Tracked<T>) -> TrackedGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Reads the node hostname from `/proc` (no libc).
pub fn hostname() -> String {
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|_| "localhost".to_string())
}

impl SelfMonitor {
    /// Starts monitoring the calling process.
    ///
    /// `rank` tags the process for the report (pass the MPI rank when
    /// running under a launcher).
    pub fn start(config: ZeroSumConfig, rank: Option<u32>) -> Result<Self, SourceError> {
        let src = LinuxProc::new();
        let pid = src.self_pid()?;
        Self::start_for_pid(config, pid, rank)
    }

    /// Starts monitoring an arbitrary live process — the `zerosum`
    /// launcher-wrapper mode (§4's `srun -n8 zerosum-mpi miniqmc`): the
    /// wrapper spawns the application as a child and watches it from
    /// outside through `/proc/<pid>`.
    pub fn start_for_pid(
        config: ZeroSumConfig,
        pid: zerosum_proc::Pid,
        rank: Option<u32>,
    ) -> Result<Self, SourceError> {
        let src = LinuxProc::new();
        // Initial configuration detection: capture the process mask now,
        // before any runtime rebinding (the __libc_start_main moment).
        let cpus_allowed = src
            .process_status(pid)
            .map(|s| s.cpus_allowed)
            .unwrap_or_default();
        let mut monitor = Monitor::new(config.clone());
        monitor.watch_process(ProcessInfo {
            pid,
            rank,
            hostname: hostname(),
            gpus: vec![],
            cpus_allowed,
        });
        if config.signal_handler {
            crate::signal::install_panic_hook(rank);
        }
        let shared = Arc::new(Tracked::new("core.attach.monitor", monitor));
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let handle = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let period = Duration::from_micros(config.period_us);
            std::thread::Builder::new()
                .name("ZeroSum".to_string())
                .spawn(move || {
                    let src = LinuxProc::new();
                    // First sample immediately (initial configuration
                    // detection), then periodically.
                    loop {
                        {
                            let t_s = started.elapsed().as_secs_f64();
                            lock_unpoisoned(&shared).sample(t_s, &src);
                        }
                        // Sleep in short slices so stop() is responsive.
                        let mut remaining = period;
                        while remaining > Duration::ZERO {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            let nap = remaining.min(Duration::from_millis(20));
                            std::thread::sleep(nap);
                            remaining = remaining.saturating_sub(nap);
                        }
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                })
                .expect("spawn ZeroSum monitor thread")
        };
        Ok(SelfMonitor {
            stop,
            shared,
            handle: Some(handle),
            started,
        })
    }

    /// Seconds since monitoring started.
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Runs `f` against the monitor's current state (e.g. for live
    /// heartbeats or steering exports, §3.6).
    pub fn with_monitor<R>(&self, f: impl FnOnce(&Monitor) -> R) -> R {
        f(&lock_unpoisoned(&self.shared))
    }

    /// Stops the background thread, takes a final sample, and returns the
    /// monitor plus the run duration in seconds.
    pub fn stop(mut self) -> (Monitor, f64) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let duration = self.started.elapsed().as_secs_f64();
        let mut monitor = std::mem::replace(
            &mut *lock_unpoisoned(&self.shared),
            Monitor::new(ZeroSumConfig::default()),
        );
        monitor.sample(duration, &LinuxProc::new());
        (monitor, duration)
    }
}

impl Drop for SelfMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report;

    #[test]
    fn self_monitoring_observes_this_process() {
        let cfg = ZeroSumConfig {
            period_us: 50_000, // 20 Hz so the test is quick
            signal_handler: false,
            ..Default::default()
        };
        let sm = SelfMonitor::start(cfg, Some(0)).expect("start");
        // Burn some CPU so utilization is visible.
        let mut acc = 0u64;
        let until = Instant::now() + Duration::from_millis(300);
        while Instant::now() < until {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(acc);
        let live_threads =
            sm.with_monitor(|m| m.processes().first().map(|w| w.lwps.len()).unwrap_or(0));
        let (mon, dur) = sm.stop();
        assert!(dur >= 0.3);
        let w = &mon.processes()[0];
        // At least the main thread and the ZeroSum thread were seen.
        assert!(w.lwps.len() >= 2, "saw {} threads", w.lwps.len());
        assert!(live_threads >= 1);
        let zs = w
            .lwps
            .tracks()
            .find(|t| t.kind == crate::lwp::LwpKind::ZeroSum);
        assert!(zs.is_some(), "ZeroSum thread classified by name");
        // Report renders with real data.
        let rep = report::render_process_report(&mon, w.info.pid, dur, None);
        assert!(rep.contains("Process Summary:"));
        assert!(rep.contains("Hardware Summary:"));
        assert!(!w.cpus_allowed.is_empty());
    }

    #[test]
    fn hostname_is_nonempty() {
        assert!(!hostname().is_empty());
    }
}
