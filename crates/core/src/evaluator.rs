//! Configuration evaluation: the "warning lights and useful gauges (with
//! explanation)" of §3.
//!
//! The paper's prototype stops short of §3.2 ("ZeroSum does not yet have
//! any capability to detect and report a misconfiguration … there are
//! some easy benefits available in automatically detecting when one or
//! more LWPs are assigned to the same set of HWTs"). This module
//! implements that natural next step as a rules engine over the monitor's
//! observations plus the node topology.

use crate::contention;
use crate::memory::MemPressureSource;
use crate::monitor::Monitor;
use std::fmt::Write as _;
use zerosum_proc::{Pid, Tid};
use zerosum_topology::distance;
use zerosum_topology::{CpuSet, Topology};

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a tuning opportunity.
    Info,
    /// Likely performance loss.
    Warning,
    /// Severe misconfiguration (wasted allocation / large slowdown).
    Critical,
}

/// A configuration finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// Multiple busy LWPs are pinned to the same hardware thread(s) —
    /// the Table 1 default-`srun` disaster.
    OversubscribedHwts {
        /// The process.
        pid: Pid,
        /// Busy LWPs per allowed hardware thread.
        ratio: f64,
        /// Example contended hardware thread.
        example_hwt: Option<u32>,
    },
    /// Cores inside the process mask stayed essentially idle.
    UnderutilizedCpus {
        /// The process.
        pid: Pid,
        /// The idle hardware threads.
        cpus: CpuSet,
    },
    /// Busy threads share the full process mask (unbound) — works, but
    /// binding would avoid migrations (Table 2 → Table 3 advice).
    UnboundThreads {
        /// The process.
        pid: Pid,
        /// Number of unbound busy threads.
        count: usize,
        /// Observed thread migrations.
        migrations: usize,
    },
    /// ZeroSum's own monitor thread shares a hardware thread with a busy
    /// application thread (the Table 3 LWP-18997 note).
    MonitorSharesHwt {
        /// The process.
        pid: Pid,
        /// The application thread being perturbed.
        app_tid: Tid,
        /// The shared hardware thread.
        hwt: u32,
    },
    /// The process uses a GPU that is not attached to its NUMA domain.
    GpuNumaMismatch {
        /// The process.
        pid: Pid,
        /// The GPU physical index.
        gpu: u32,
        /// NUMA domain of the GPU.
        gpu_numa: u32,
        /// NUMA domains of the process mask.
        proc_numas: Vec<u32>,
    },
    /// Node memory pressure, with attribution.
    MemoryPressure {
        /// Who is responsible.
        source: MemPressureSource,
    },
    /// A thread's affinity mask changed mid-run — something (runtime,
    /// tool, operator) re-bound it after launch.
    AffinityChanged {
        /// The process.
        pid: Pid,
        /// Threads whose mask changed between samples.
        tids: Vec<Tid>,
    },
    /// A GPU is close to exhausting its device memory (§3.5's periodic
    /// used/free check).
    GpuMemoryPressure {
        /// GPU physical index.
        gpu: u32,
        /// Peak used bytes observed.
        used_peak: u64,
        /// Device capacity, bytes.
        capacity: u64,
    },
}

impl Finding {
    /// The finding's severity.
    pub fn severity(&self) -> Severity {
        match self {
            Finding::OversubscribedHwts { .. } => Severity::Critical,
            Finding::MemoryPressure { .. } => Severity::Critical,
            Finding::UnderutilizedCpus { .. } => Severity::Warning,
            Finding::GpuNumaMismatch { .. } => Severity::Warning,
            Finding::GpuMemoryPressure { .. } => Severity::Warning,
            Finding::UnboundThreads { .. } => Severity::Info,
            Finding::MonitorSharesHwt { .. } => Severity::Info,
            Finding::AffinityChanged { .. } => Severity::Info,
        }
    }

    /// The explanation shown to the user.
    pub fn explain(&self) -> String {
        match self {
            Finding::OversubscribedHwts {
                pid,
                ratio,
                example_hwt,
            } => {
                let mut s = format!(
                    "process {pid}: {ratio:.1} busy threads per allowed hardware thread — \
                     the OS is time-slicing threads"
                );
                if let Some(h) = example_hwt {
                    write!(s, " (e.g. HWT {h})").unwrap();
                }
                s.push_str("; request more cores per task (srun -c N) or reduce OMP_NUM_THREADS");
                s
            }
            Finding::UnderutilizedCpus { pid, cpus } => format!(
                "process {pid}: hardware threads [{}] in the affinity mask stayed idle — \
                 allocation time is being wasted; increase concurrency or request fewer cores",
                cpus.to_list_string()
            ),
            Finding::UnboundThreads {
                pid,
                count,
                migrations,
            } => format!(
                "process {pid}: {count} busy threads are not bound to cores \
                 ({migrations} migrations observed); consider OMP_PROC_BIND=spread \
                 OMP_PLACES=cores for stable placement"
            ),
            Finding::MonitorSharesHwt { pid, app_tid, hwt } => format!(
                "process {pid}: the ZeroSum monitor thread shares HWT {hwt} with busy \
                 application thread {app_tid}; move it with the monitor-placement option \
                 if the core is saturated"
            ),
            Finding::GpuNumaMismatch {
                pid,
                gpu,
                gpu_numa,
                proc_numas,
            } => format!(
                "process {pid}: GPU {gpu} is attached to NUMA domain {gpu_numa} but the \
                 process runs on domain(s) {proc_numas:?}; use --gpu-bind=closest or fix \
                 the visible-devices mapping"
            ),
            Finding::AffinityChanged { pid, tids } => format!(
                "process {pid}: thread(s) {tids:?} changed affinity after launch — \
                 verify the runtime's binding matches what the job script requested"
            ),
            Finding::GpuMemoryPressure {
                gpu,
                used_peak,
                capacity,
            } => format!(
                "GPU {gpu}: peak device memory {:.2} GiB of {:.2} GiB ({:.0}%) — \
                 approaching exhaustion; reduce walkers/batch per rank",
                *used_peak as f64 / (1u64 << 30) as f64,
                *capacity as f64 / (1u64 << 30) as f64,
                *used_peak as f64 * 100.0 / *capacity as f64
            ),
            Finding::MemoryPressure { source } => match source {
                MemPressureSource::Application => {
                    "node memory nearly exhausted by this job — reduce per-rank working \
                     set or use fewer ranks per node"
                        .to_string()
                }
                MemPressureSource::External => {
                    "node memory nearly exhausted by processes OUTSIDE this job — \
                     evidence for reporting a system issue"
                        .to_string()
                }
                MemPressureSource::None => "memory ok".to_string(),
            },
        }
    }
}

/// Evaluates every monitored process against the rules.
pub fn evaluate(monitor: &Monitor, topo: &Topology) -> Vec<Finding> {
    let mut findings = Vec::new();
    for w in monitor.processes() {
        let pid = w.info.pid;
        let Some(rep) = contention::analyze(monitor, pid) else {
            continue;
        };
        // Rule 1: oversubscription.
        if rep.oversubscription > 1.0 || rep.has_hwt_contention() {
            let busy_tids: Vec<Tid> = rep.lwps.iter().filter(|l| l.busy).map(|l| l.tid).collect();
            // Exclude the monitor-sharing special case when ratio ≤ 1.
            if rep.oversubscription > 1.0
                || rep
                    .contended_hwts
                    .iter()
                    .any(|(_, tids)| tids.iter().filter(|t| busy_tids.contains(t)).count() >= 2)
            {
                findings.push(Finding::OversubscribedHwts {
                    pid,
                    ratio: rep.oversubscription,
                    example_hwt: rep.contended_hwts.first().map(|(h, _)| *h),
                });
            }
        }
        // Rule 2: underutilized CPUs (≥95% idle over the run).
        let mut idle_cpus = CpuSet::new();
        for cpu in w.cpus_allowed.iter() {
            if let Some((idle, _, _)) = monitor.hwt.overall(cpu) {
                if idle >= 95.0 {
                    idle_cpus.set(cpu);
                }
            }
        }
        if !idle_cpus.is_empty() && rep.oversubscription <= 1.0 {
            findings.push(Finding::UnderutilizedCpus {
                pid,
                cpus: idle_cpus,
            });
        }
        // Rule 3: unbound busy threads.
        let unbound: Vec<_> = w
            .lwps
            .tracks()
            .filter(|t| {
                t.kind != crate::lwp::LwpKind::ZeroSum
                    && t.kind != crate::lwp::LwpKind::Other
                    && t.affinity == w.cpus_allowed
                    && w.cpus_allowed.count() > 1
                    && t.cpu_fraction() >= contention::BUSY_CPU_FRACTION
            })
            .collect();
        if !unbound.is_empty() {
            let migrations = unbound.iter().map(|t| t.observed_migrations()).sum();
            findings.push(Finding::UnboundThreads {
                pid,
                count: unbound.len(),
                migrations,
            });
        }
        // Rule 4: monitor sharing an HWT with a busy app thread.
        let monitor_affinities: Vec<CpuSet> = w
            .lwps
            .tracks()
            .filter(|t| t.kind == crate::lwp::LwpKind::ZeroSum)
            .map(|t| t.affinity.clone())
            .collect();
        for ma in &monitor_affinities {
            if ma.count() != 1 {
                continue;
            }
            let hwt = ma.first().unwrap();
            if let Some(app) = w.lwps.tracks().find(|t| {
                t.kind != crate::lwp::LwpKind::ZeroSum
                    && t.affinity.contains(hwt)
                    && t.affinity.count() <= 2
                    && t.cpu_fraction() >= contention::BUSY_CPU_FRACTION
            }) {
                findings.push(Finding::MonitorSharesHwt {
                    pid,
                    app_tid: app.tid,
                    hwt,
                });
            }
        }
        // Rule 5: affinity changed mid-run.
        let changed: Vec<Tid> = w
            .lwps
            .tracks()
            .filter(|t| t.affinity_changed && t.kind != crate::lwp::LwpKind::ZeroSum)
            .map(|t| t.tid)
            .collect();
        if !changed.is_empty() {
            findings.push(Finding::AffinityChanged { pid, tids: changed });
        }
        // Rule 6: GPU-NUMA locality.
        let proc_numas = distance::numas_of_cpuset(topo, &w.cpus_allowed);
        for &gpu in &w.info.gpus {
            let gpu_numa = topo.gpus().iter().find_map(|&g| {
                let a = topo.object(g).attrs.gpu.as_ref()?;
                (a.physical_index == gpu).then_some(a.local_numa)
            });
            if let Some(gn) = gpu_numa {
                if !proc_numas.is_empty() && !proc_numas.contains(&gn) {
                    findings.push(Finding::GpuNumaMismatch {
                        pid,
                        gpu,
                        gpu_numa: gn,
                        proc_numas: proc_numas.clone(),
                    });
                }
            }
        }
    }
    // Rule 7: memory pressure (node-wide, once).
    let pressure = monitor.mem.pressure();
    if pressure != MemPressureSource::None {
        findings.push(Finding::MemoryPressure { source: pressure });
    }
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity()));
    findings
}

/// Evaluates GPU device-memory headroom (§3.5): flags devices whose
/// peak used VRAM exceeded `warn_frac` of capacity. `devices` pairs each
/// monitored slot with its physical index and capacity in bytes.
pub fn evaluate_gpu_memory(
    monitor: &zerosum_gpu::GpuMonitor,
    devices: &[(u32, u32, u64)],
    warn_frac: f64,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for &(slot, phys, capacity) in devices {
        let (_, _, peak) = monitor.summary(slot, zerosum_gpu::GpuMetricKind::UsedVramBytes);
        if capacity > 0 && peak >= warn_frac * capacity as f64 {
            out.push(Finding::GpuMemoryPressure {
                gpu: phys,
                used_peak: peak as u64,
                capacity,
            });
        }
    }
    out
}

/// Renders findings as the report's "warning lights" section.
pub fn render_findings(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "Configuration Evaluation: no issues detected\n".to_string();
    }
    let mut out = String::from("Configuration Evaluation:\n");
    for f in findings {
        let tag = match f.severity() {
            Severity::Critical => "CRITICAL",
            Severity::Warning => "WARNING",
            Severity::Info => "INFO",
        };
        writeln!(out, "  [{tag}] {}", f.explain()).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZeroSumConfig;
    use crate::monitor::ProcessInfo;
    use zerosum_sched::{Behavior, NodeSim, SchedParams, SimProcSource};
    use zerosum_topology::presets;

    fn monitor_over(
        mask: CpuSet,
        worker_masks: &[CpuSet],
        gpus: Vec<u32>,
    ) -> (Monitor, Topology, Pid) {
        let topo = presets::frontier();
        let mut sim = NodeSim::new(topo.clone(), SchedParams::default());
        let pid = sim.spawn_process(
            "app",
            mask,
            1_024,
            Behavior::FiniteCompute {
                remaining_us: 5_000_000,
                chunk_us: 10_000,
            },
        );
        for wm in worker_masks {
            sim.spawn_task(
                pid,
                "OpenMP",
                Some(wm.clone()),
                Behavior::FiniteCompute {
                    remaining_us: 5_000_000,
                    chunk_us: 10_000,
                },
                false,
            );
        }
        let mut mon = Monitor::new(ZeroSumConfig::default());
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(0),
            hostname: "n".into(),
            gpus,
            cpus_allowed: Default::default(),
        });
        for i in 1..=4u64 {
            sim.run_for(1_000_000);
            mon.sample(i as f64, &SimProcSource::new(&sim));
        }
        (mon, topo, pid)
    }

    #[test]
    fn table1_config_is_critical_oversubscription() {
        let one = CpuSet::single(1);
        let (mon, topo, _) = monitor_over(one.clone(), &[one.clone(), one.clone()], vec![]);
        let findings = evaluate(&mon, &topo);
        assert!(
            matches!(findings.first(), Some(Finding::OversubscribedHwts { ratio, .. }) if *ratio > 1.0),
            "findings: {findings:?}"
        );
        let text = render_findings(&findings);
        assert!(text.contains("CRITICAL"));
        assert!(text.contains("srun -c"));
    }

    #[test]
    fn idle_cores_trigger_underutilization() {
        // Mask 1-7 but only one busy thread.
        let mask = CpuSet::parse_list("1-7").unwrap();
        let (mon, topo, _) = monitor_over(mask, &[], vec![]);
        let findings = evaluate(&mon, &topo);
        assert!(
            findings.iter().any(|f| matches!(
                f,
                Finding::UnderutilizedCpus { cpus, .. } if cpus.count() >= 5
            )),
            "findings: {findings:?}"
        );
    }

    #[test]
    fn unbound_busy_threads_are_informational() {
        let mask = CpuSet::parse_list("1-3").unwrap();
        let (mon, topo, _) = monitor_over(mask.clone(), &[mask.clone(), mask.clone()], vec![]);
        let findings = evaluate(&mon, &topo);
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::UnboundThreads { count, .. } if *count >= 2)));
    }

    #[test]
    fn gpu_numa_mismatch_detected() {
        // Process on NUMA 0 (cores 1-7) with GPU 0 — which lives on
        // NUMA 3 per Figure 2. The classic Frontier trap.
        let mask = CpuSet::parse_list("1-7").unwrap();
        let (mon, topo, _) = monitor_over(mask, &[], vec![0]);
        let findings = evaluate(&mon, &topo);
        let hit = findings.iter().find_map(|f| match f {
            Finding::GpuNumaMismatch { gpu, gpu_numa, .. } => Some((*gpu, *gpu_numa)),
            _ => None,
        });
        assert_eq!(hit, Some((0, 3)), "findings: {findings:?}");
    }

    #[test]
    fn matched_gpu_is_clean() {
        // GPU 4 *is* local to NUMA 0.
        let mask = CpuSet::parse_list("1-7").unwrap();
        let (mon, topo, _) = monitor_over(mask, &[], vec![4]);
        let findings = evaluate(&mon, &topo);
        assert!(!findings
            .iter()
            .any(|f| matches!(f, Finding::GpuNumaMismatch { .. })));
    }

    #[test]
    fn affinity_change_is_flagged() {
        let topo = presets::frontier();
        let mut sim = NodeSim::new(topo.clone(), SchedParams::default());
        let pid = sim.spawn_process(
            "app",
            CpuSet::parse_list("1-7").unwrap(),
            64,
            Behavior::FiniteCompute {
                remaining_us: 5_000_000,
                chunk_us: 10_000,
            },
        );
        let mut mon = Monitor::new(ZeroSumConfig::default());
        mon.watch_process(ProcessInfo {
            pid,
            rank: None,
            hostname: "n".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        sim.run_for(1_000_000);
        mon.sample(1.0, &SimProcSource::new(&sim));
        // Someone re-binds the thread mid-run.
        sim.set_task_affinity(pid, CpuSet::single(3));
        sim.run_for(1_000_000);
        mon.sample(2.0, &SimProcSource::new(&sim));
        let findings = evaluate(&mon, &topo);
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, Finding::AffinityChanged { tids, .. } if tids.contains(&pid))),
            "{findings:?}"
        );
    }

    #[test]
    fn gpu_memory_pressure_detection() {
        use zerosum_gpu::{GpuBackend, GpuMonitor, SmiSim, SyntheticFeed};
        // A device whose feed reports 60 of 64 GiB in use.
        let mut backend =
            SmiSim::rocm_mi250x(1, Box::new(SyntheticFeed::uniform(1, 0.5, 60 << 30)));
        let mut gm = GpuMonitor::new(1);
        for _ in 0..3 {
            gm.poll(&mut backend, 1.0);
        }
        let cap = 64u64 << 30;
        let findings = evaluate_gpu_memory(&gm, &[(0, 4, cap)], 0.9);
        match findings.as_slice() {
            [Finding::GpuMemoryPressure {
                gpu: 4,
                used_peak,
                capacity,
            }] => {
                assert_eq!(*capacity, cap);
                assert!(*used_peak >= 60 << 30);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(findings[0].explain().contains("approaching exhaustion"));
        // Plenty of headroom → no finding.
        assert!(evaluate_gpu_memory(&gm, &[(0, 4, 1 << 52)], 0.9).is_empty());
        let _ = backend.library_name();
    }

    #[test]
    fn severity_ordering_and_rendering() {
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert!(render_findings(&[]).contains("no issues"));
    }
}
