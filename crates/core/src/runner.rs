//! The virtual-time monitoring driver.
//!
//! Couples a [`NodeSim`] with a [`Monitor`]: ZeroSum's asynchronous
//! thread is spawned *into the simulation* as a real scheduled task (so
//! its CPU cost perturbs the application exactly as in §4.1's overhead
//! study), while the sampling itself executes at the same virtual
//! instants against the simulated `/proc`.

use crate::gpu_link::SimGpuLink;
use crate::heartbeat::{Liveness, ProgressTracker};
use crate::monitor::Monitor;
use zerosum_proc::fault::FaultInjector;
use zerosum_proc::Tid;
use zerosum_sched::{Behavior, NodeSim, SimProcSource};

/// Result of a monitored virtual run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Application duration in virtual seconds (exact completion time).
    pub duration_s: f64,
    /// False if the run hit `max_us` before the application finished.
    pub completed: bool,
    /// Number of monitor samples taken.
    pub samples: u64,
    /// Liveness classification per sample (§3.3).
    pub liveness: Vec<Liveness>,
    /// Heartbeat lines, when enabled in the config.
    pub heartbeats: Vec<String>,
}

/// Spawns the ZeroSum monitor thread into every watched process.
///
/// Each thread is pinned per the config (default: the last hardware
/// thread of the process mask) and modeled as a periodic task costing
/// `config.cost` per sample — the §3.1 asynchronous thread.
pub fn attach_monitor_threads(sim: &mut NodeSim, monitor: &Monitor) -> Vec<Tid> {
    let mut tids = Vec::new();
    for w in monitor.processes() {
        let pid = w.info.pid;
        let Some(p) = sim.process(pid) else { continue };
        let mask = p.cpus_allowed.clone();
        let affinity = monitor.config.monitor_affinity(&mask);
        let tid = sim.spawn_task(
            pid,
            "ZeroSum",
            Some(affinity),
            Behavior::Periodic {
                period_us: monitor.config.period_us,
                sys_us: monitor.config.cost.sys_us,
                user_us: monitor.config.cost.user_us,
            },
            true,
        );
        tids.push(tid);
    }
    tids
}

/// Runs the simulation to application completion (or `max_us`) while
/// sampling every `monitor.config.period_us`.
pub fn run_monitored(
    sim: &mut NodeSim,
    monitor: &mut Monitor,
    gpu: Option<&mut SimGpuLink>,
    max_us: u64,
) -> RunOutcome {
    run_monitored_impl(sim, monitor, gpu, max_us, None)
}

/// Like [`run_monitored`], but every `/proc` read passes through the
/// given fault injector — the chaos harness's entry point. Injected
/// latency and the monitor's retry backoff are charged to virtual time
/// after each sample, so slow or flaky reads perturb the application the
/// way they would on a real node.
pub fn run_monitored_faulty(
    sim: &mut NodeSim,
    monitor: &mut Monitor,
    gpu: Option<&mut SimGpuLink>,
    max_us: u64,
    injector: &FaultInjector,
) -> RunOutcome {
    run_monitored_impl(sim, monitor, gpu, max_us, Some(injector))
}

fn run_monitored_impl(
    sim: &mut NodeSim,
    monitor: &mut Monitor,
    mut gpu: Option<&mut SimGpuLink>,
    max_us: u64,
    injector: Option<&FaultInjector>,
) -> RunOutcome {
    let start_us = sim.now_us();
    let deadline = start_us + max_us;
    let mut tracker = ProgressTracker::new();
    let mut liveness = Vec::new();
    let mut heartbeats = Vec::new();
    let mut completed = false;
    let sample_once = |sim: &mut NodeSim, monitor: &mut Monitor, t_s: f64| {
        {
            let src = SimProcSource::new(sim);
            match injector {
                Some(inj) => monitor.sample(t_s, &inj.wrap(&src)),
                None => monitor.sample(t_s, &src),
            }
        }
        // Charge injected read latency and retry backoff to the clock:
        // monitoring cost the application real time.
        let extra = monitor.take_backoff_us() + injector.map(|i| i.drain_latency_us()).unwrap_or(0);
        if extra > 0 {
            sim.run_for(extra);
        }
        // Overload control: report this round's full measured cost (cost
        // model + backoff + injected latency) so the governor can widen
        // the period and the watchdog can shed detail.
        monitor.note_round_cost(t_s, monitor.config.cost.total_us() + extra);
    };
    // Initial configuration detection (§3, phase 1): observe the process
    // and thread state immediately at startup.
    sample_once(sim, monitor, 0.0);
    while sim.now_us() < deadline {
        // Re-read each round: the overhead governor may have widened the
        // effective period since the last one.
        let period = monitor.effective_period_us().max(1_000);
        let budget = period.min(deadline - sim.now_us());
        // Advance up to one period, stopping exactly when the app exits.
        if sim.run_until_apps_done(200, budget).is_some() {
            completed = true;
        }
        let t_s = (sim.now_us() - start_us) as f64 / 1e6;
        sample_once(sim, monitor, t_s);
        if let Some(link) = gpu.as_deref_mut() {
            link.poll(sim, budget as f64 / 1e6);
        }
        liveness.push(tracker.assess(monitor));
        if monitor.config.heartbeat {
            heartbeats.push(tracker.heartbeat_line(monitor, t_s));
        }
        if completed {
            break;
        }
    }
    RunOutcome {
        duration_s: (sim.now_us() - start_us) as f64 / 1e6,
        completed,
        samples: monitor.stats.rounds,
        liveness,
        heartbeats,
    }
}

/// Runs the same application *without* any monitor — the §4.1 baseline.
/// Returns the duration in seconds, or `None` on timeout.
pub fn run_baseline(sim: &mut NodeSim, max_us: u64) -> Option<f64> {
    let start = sim.now_us();
    // Same exact-tick completion detection as the monitored path, so
    // overhead comparisons are unbiased.
    sim.run_until_apps_done(200, max_us)
        .map(|done| (done - start) as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MonitorCost, MonitorPlacement, ZeroSumConfig};
    use crate::monitor::ProcessInfo;
    use zerosum_sched::SchedParams;
    use zerosum_topology::{presets, CpuSet};

    fn app_sim(work_ms: u64) -> (NodeSim, u32) {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "app",
            CpuSet::from_indices([0u32, 1]),
            1_024,
            Behavior::FiniteCompute {
                remaining_us: work_ms * 1_000,
                chunk_us: 10_000,
            },
        );
        (sim, pid)
    }

    #[test]
    fn monitored_run_completes_and_samples() {
        let (mut sim, pid) = app_sim(3_500);
        let mut mon = Monitor::new(ZeroSumConfig::default().with_period_ms(1_000));
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(0),
            hostname: "n".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        let tids = attach_monitor_threads(&mut sim, &mon);
        assert_eq!(tids.len(), 1);
        // Monitor pinned to the last HWT of the mask (CPU 1).
        assert_eq!(
            sim.task_by_tid(tids[0]).unwrap().affinity.to_list_string(),
            "1"
        );
        let out = run_monitored(&mut sim, &mut mon, None, 60_000_000);
        assert!(out.completed);
        assert!((3.4..4.2).contains(&out.duration_s), "{}", out.duration_s);
        assert!(out.samples >= 3);
        // The monitor thread shows up in the LWP registry as ZeroSum.
        let w = mon.process(pid).unwrap();
        assert!(w
            .lwps
            .tracks()
            .any(|t| t.kind == crate::lwp::LwpKind::ZeroSum));
        assert!(out
            .liveness
            .iter()
            .all(|l| matches!(l, Liveness::Progressing | Liveness::Finished)));
    }

    #[test]
    fn timeout_reports_incomplete() {
        let (mut sim, pid) = app_sim(50_000);
        let mut mon = Monitor::new(ZeroSumConfig::default());
        mon.watch_process(ProcessInfo {
            pid,
            rank: None,
            hostname: "n".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        let out = run_monitored(&mut sim, &mut mon, None, 2_000_000);
        assert!(!out.completed);
        assert!((1.9..2.1).contains(&out.duration_s));
    }

    #[test]
    fn heartbeats_collected_when_enabled() {
        let (mut sim, pid) = app_sim(2_500);
        let mut mon = Monitor::new(ZeroSumConfig {
            heartbeat: true,
            ..Default::default()
        });
        mon.watch_process(ProcessInfo {
            pid,
            rank: None,
            hostname: "n".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        let out = run_monitored(&mut sim, &mut mon, None, 60_000_000);
        assert!(!out.heartbeats.is_empty());
        assert!(out.heartbeats[0].starts_with("ZeroSum: t="));
    }

    #[test]
    fn governor_widens_period_during_run_and_records_changes() {
        let (mut sim, pid) = app_sim(10_000);
        // 50 ms/round: 5x the 1% budget at 1 Hz. The governor must walk
        // the period out to 8 s (budget 80 ms > cost) within 5 rounds.
        let mut mon = Monitor::new(ZeroSumConfig::default().with_cost(MonitorCost {
            sys_us: 35_000,
            user_us: 15_000,
        }));
        mon.watch_process(ProcessInfo {
            pid,
            rank: None,
            hostname: "n".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        let out = run_monitored(&mut sim, &mut mon, None, 60_000_000);
        assert!(out.completed);
        assert_eq!(mon.effective_period_us(), 8_000_000);
        let c = &mon.governor.changes;
        assert_eq!(c.len(), 3, "1s -> 2s -> 4s -> 8s, each recorded");
        assert!(c.windows(2).all(|w| w[0].to_us == w[1].from_us));
        assert!(c.iter().all(|ch| ch.cost_us > ch.budget_us));
        // Widening really throttled sampling: ~10 s of app in few rounds.
        assert!(out.samples <= 6, "sampled {} times", out.samples);
    }

    #[test]
    fn baseline_matches_unperturbed_runtime() {
        let (mut sim, _) = app_sim(2_000);
        let d = run_baseline(&mut sim, 60_000_000).unwrap();
        assert!((1.9..2.3).contains(&d), "{d}");
    }

    #[test]
    fn monitor_cost_perturbs_saturated_core() {
        // Two busy threads on one core + monitor on the same core: the
        // monitored run must be measurably slower than baseline — the
        // Figure 8 two-threads-per-core mechanism.
        let mk = || {
            let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
            let pid = sim.spawn_process(
                "app",
                CpuSet::single(0),
                64,
                Behavior::FiniteCompute {
                    remaining_us: 5_000_000,
                    chunk_us: 10_000,
                },
            );
            sim.spawn_task(
                pid,
                "w2",
                None,
                Behavior::FiniteCompute {
                    remaining_us: 5_000_000,
                    chunk_us: 10_000,
                },
                false,
            );
            (sim, pid)
        };
        let (mut base_sim, _) = mk();
        let base = run_baseline(&mut base_sim, 120_000_000).unwrap();
        let (mut mon_sim, pid) = mk();
        let mut mon = Monitor::new(
            ZeroSumConfig::default()
                .with_placement(MonitorPlacement::Hwt(0))
                .with_cost(MonitorCost {
                    sys_us: 35_000,
                    user_us: 15_000,
                }),
        );
        mon.watch_process(ProcessInfo {
            pid,
            rank: None,
            hostname: "n".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        attach_monitor_threads(&mut mon_sim, &mon);
        let out = run_monitored(&mut mon_sim, &mut mon, None, 120_000_000);
        assert!(out.completed);
        // 50 ms of monitor CPU per second stolen from the saturated core.
        assert!(
            out.duration_s > base * 1.02,
            "base {base}, monitored {}",
            out.duration_s
        );
    }
}
