//! ZeroSum configuration.
//!
//! Mirrors the knobs the paper describes: the sampling period (1 s
//! default, §4), the placement of the asynchronous monitor thread ("the
//! last hardware thread assigned to this process by default (this is
//! user configurable)", §3.1), the optional signal handler, and log
//! output.

use std::path::PathBuf;

/// Where the asynchronous ZeroSum monitor thread is pinned.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum MonitorPlacement {
    /// The last hardware thread of the process affinity mask — the
    /// paper's default.
    #[default]
    LastHwt,
    /// The first hardware thread of the mask.
    FirstHwt,
    /// A specific hardware thread OS index (the runtime option passed to
    /// the `zerosum-mpi` wrapper script in §4).
    Hwt(u32),
    /// Unpinned: the whole process mask.
    Unbound,
}

/// The CPU cost model of one monitor sample, used when the monitor runs
/// as a simulated task. Reading `/proc` is kernel time; parsing and
/// bookkeeping are user time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorCost {
    /// Kernel-mode µs per sample.
    pub sys_us: u64,
    /// User-mode µs per sample.
    pub user_us: u64,
}

impl Default for MonitorCost {
    fn default() -> Self {
        // ~5 ms/sample: reading stat+status for ~10 LWPs plus the 128-row
        // /proc/stat and meminfo, then parsing. Produces the ≈0.5%
        // overhead of Figure 8 when sharing a saturated core at 1 Hz.
        MonitorCost {
            sys_us: 3_500,
            user_us: 1_500,
        }
    }
}

impl MonitorCost {
    /// Total µs per sample.
    pub fn total_us(&self) -> u64 {
        self.sys_us + self.user_us
    }
}

/// Graceful-degradation knobs for the sampling loop (§3.1.1: the
/// monitor must tolerate a hostile `/proc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Extra attempts after a transient `Io` failure (bounded retry).
    pub retry_limit: u32,
    /// Virtual-time µs charged to the monitor for the first retry;
    /// doubles per attempt (exponential backoff, drained by the runner
    /// into the simulation clock).
    pub backoff_us: u64,
    /// Consecutive failed rounds before a tid is quarantined.
    pub quarantine_after: u32,
    /// Rounds a quarantined tid sleeps before a re-probe.
    pub reprobe_after: u32,
    /// Fill failed slots from the last good sample (flagged degraded in
    /// the ledger) instead of dropping them.
    pub interpolate: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry_limit: 2,
            backoff_us: 200,
            quarantine_after: 3,
            reprobe_after: 5,
            interpolate: true,
        }
    }
}

/// Overload-control knobs: the per-round sampling deadline watchdog and
/// the overhead governor that widens the sampling period when the
/// monitor's measured cost exceeds its budget. The paper promises less
/// than one core of overhead (§4); on a node where `/proc` reads slow
/// down (fault storms, CPU starvation, huge thread counts) the governor
/// keeps that promise by trading temporal resolution for cost, and the
/// watchdog sheds per-LWP detail — never the per-HWT totals — when a
/// single round overruns its deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadConfig {
    /// Enable the overhead governor (period widening).
    pub governor: bool,
    /// Monitor cost budget as a percentage of the sampling period. When
    /// the measured per-round cost exceeds `budget_pct`% of the current
    /// period, the governor doubles the period (up to `max_period_us`)
    /// and records the change for the report.
    pub budget_pct: u32,
    /// Ceiling the governor will not widen the period past, µs.
    pub max_period_us: u64,
    /// Per-round sampling deadline as a fraction of the period. A round
    /// whose cost exceeds it counts as an overrun; with `shed` enabled
    /// the next round drops per-LWP detail (worker `stat`/`status`
    /// reads) while keeping per-HWT totals, the main thread, and memory.
    pub deadline_frac: f64,
    /// Enable sample shedding after a deadline overrun.
    pub shed: bool,
}

impl Default for OverheadConfig {
    fn default() -> Self {
        // Budget 1% of the period (10 ms at 1 Hz): an order of magnitude
        // above the ~0.5% steady-state cost, so the governor is idle on
        // healthy nodes and reacts within one round to a 4x cost spike.
        OverheadConfig {
            governor: true,
            budget_pct: 1,
            max_period_us: 16_000_000,
            deadline_frac: 0.5,
            shed: true,
        }
    }
}

impl OverheadConfig {
    /// The per-round cost budget for a given period, µs.
    pub fn budget_us(&self, period_us: u64) -> u64 {
        period_us.saturating_mul(self.budget_pct as u64) / 100
    }

    /// The per-round sampling deadline for a given period, µs.
    pub fn deadline_us(&self, period_us: u64) -> u64 {
        (period_us as f64 * self.deadline_frac) as u64
    }
}

/// Top-level ZeroSum configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ZeroSumConfig {
    /// Sampling period, µs (paper default: once per second).
    pub period_us: u64,
    /// Monitor thread placement.
    pub placement: MonitorPlacement,
    /// Monitor thread CPU cost per sample (simulation mode).
    pub cost: MonitorCost,
    /// Install the abnormal-exit (signal) reporter.
    pub signal_handler: bool,
    /// Emit a periodic heartbeat line (§3.3 progress detection).
    pub heartbeat: bool,
    /// Number of consecutive no-progress windows before flagging a
    /// possible deadlock.
    pub deadlock_windows: u32,
    /// Directory for per-process log files; `None` keeps logs in memory.
    pub log_dir: Option<PathBuf>,
    /// Fault-tolerance behaviour of the sampling loop.
    pub resilience: ResilienceConfig,
    /// Delta sampling: skip re-reading `stat`/`status` for worker
    /// threads whose `schedstat` is unchanged since the last fresh read.
    /// A thread whose on-CPU time, wait time, and timeslice count are
    /// all identical has not been dispatched, so those records cannot
    /// have changed. The main thread is always read fresh (it carries
    /// the process-wide RSS, which moves without the thread running).
    pub delta_sampling: bool,
    /// Overload control: sampling deadline watchdog, overhead governor,
    /// and sample shedding.
    pub overhead: OverheadConfig,
    /// Capacity of every monitor time series (per-LWP samples, per-HWT
    /// utilization, RSS, meminfo). Series are ring buffers that
    /// downsample 2:1 when full, so a multi-hour run holds constant
    /// memory regardless of length.
    pub series_capacity: usize,
}

impl Default for ZeroSumConfig {
    fn default() -> Self {
        ZeroSumConfig {
            period_us: 1_000_000,
            placement: MonitorPlacement::LastHwt,
            cost: MonitorCost::default(),
            signal_handler: true,
            heartbeat: false,
            deadlock_windows: 5,
            log_dir: None,
            resilience: ResilienceConfig::default(),
            delta_sampling: true,
            overhead: OverheadConfig::default(),
            series_capacity: zerosum_stats::DEFAULT_SERIES_CAPACITY,
        }
    }
}

impl ZeroSumConfig {
    /// Builder: sets the sampling period in milliseconds.
    pub fn with_period_ms(mut self, ms: u64) -> Self {
        self.period_us = ms * 1_000;
        self
    }

    /// Builder: sets the monitor placement.
    pub fn with_placement(mut self, p: MonitorPlacement) -> Self {
        self.placement = p;
        self
    }

    /// Builder: enables or disables delta sampling.
    pub fn with_delta_sampling(mut self, on: bool) -> Self {
        self.delta_sampling = on;
        self
    }

    /// Builder: sets the per-sample cost model.
    pub fn with_cost(mut self, c: MonitorCost) -> Self {
        self.cost = c;
        self
    }

    /// Builder: sets the overload-control knobs.
    pub fn with_overhead(mut self, o: OverheadConfig) -> Self {
        self.overhead = o;
        self
    }

    /// Builder: sets the time-series ring capacity.
    pub fn with_series_capacity(mut self, cap: usize) -> Self {
        self.series_capacity = cap;
        self
    }

    /// A configuration for workloads scaled down by `scale`: the sampling
    /// period *and* the per-sample cost shrink proportionally, so a
    /// scaled experiment sees the same number of samples per block and
    /// the same relative monitor overhead as the full-size run.
    pub fn scaled(scale: u32) -> Self {
        let scale = scale.max(1) as u64;
        ZeroSumConfig {
            period_us: (1_000_000 / scale).max(10_000),
            cost: MonitorCost {
                sys_us: (3_500 / scale).max(50),
                user_us: (1_500 / scale).max(50),
            },
            ..Default::default()
        }
    }

    /// Resolves the monitor thread's affinity for a process mask.
    pub fn monitor_affinity(
        &self,
        process_mask: &zerosum_topology::CpuSet,
    ) -> zerosum_topology::CpuSet {
        use zerosum_topology::CpuSet;
        match &self.placement {
            MonitorPlacement::LastHwt => process_mask
                .last()
                .map(CpuSet::single)
                .unwrap_or_else(|| process_mask.clone()),
            MonitorPlacement::FirstHwt => process_mask
                .first()
                .map(CpuSet::single)
                .unwrap_or_else(|| process_mask.clone()),
            MonitorPlacement::Hwt(h) => CpuSet::single(*h),
            MonitorPlacement::Unbound => process_mask.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_topology::CpuSet;

    #[test]
    fn defaults_match_paper() {
        let c = ZeroSumConfig::default();
        assert_eq!(c.period_us, 1_000_000); // 1 Hz
        assert_eq!(c.placement, MonitorPlacement::LastHwt);
        assert!(c.signal_handler);
    }

    #[test]
    fn overhead_defaults_keep_governor_idle_at_paper_cost() {
        let c = ZeroSumConfig::default();
        assert!(c.overhead.governor && c.overhead.shed);
        // The paper's steady-state sampling cost (~5 ms) sits well under
        // the 1% budget (10 ms at 1 Hz): the governor must be idle on a
        // healthy node so bench numbers are unaffected.
        assert!(c.cost.total_us() < c.overhead.budget_us(c.period_us));
        assert_eq!(c.overhead.budget_us(c.period_us), 10_000);
        assert_eq!(c.overhead.deadline_us(c.period_us), 500_000);
        assert_eq!(c.series_capacity, zerosum_stats::DEFAULT_SERIES_CAPACITY);
    }

    #[test]
    fn monitor_affinity_last_hwt() {
        let c = ZeroSumConfig::default();
        let mask = CpuSet::parse_list("1-7").unwrap();
        assert_eq!(c.monitor_affinity(&mask).to_list_string(), "7");
    }

    #[test]
    fn monitor_affinity_variants() {
        let mask = CpuSet::parse_list("1-7").unwrap();
        let c = ZeroSumConfig::default().with_placement(MonitorPlacement::FirstHwt);
        assert_eq!(c.monitor_affinity(&mask).to_list_string(), "1");
        let c = ZeroSumConfig::default().with_placement(MonitorPlacement::Hwt(71));
        assert_eq!(c.monitor_affinity(&mask).to_list_string(), "71");
        let c = ZeroSumConfig::default().with_placement(MonitorPlacement::Unbound);
        assert_eq!(c.monitor_affinity(&mask).to_list_string(), "1-7");
    }

    #[test]
    fn builders() {
        let c = ZeroSumConfig::default()
            .with_period_ms(250)
            .with_cost(MonitorCost {
                sys_us: 100,
                user_us: 50,
            });
        assert_eq!(c.period_us, 250_000);
        assert_eq!(c.cost.total_us(), 150);
    }
}
