//! The ZeroSum monitor: periodic observation of processes, threads,
//! hardware threads, and memory through a [`ProcSource`].
//!
//! This is the paper's asynchronous monitor thread (§3.1) as a library:
//! each call to [`Monitor::sample`] performs one periodic observation —
//! discover LWPs from the task list, read each one's `stat`/`status`,
//! snapshot `/proc/stat` and `/proc/meminfo` — tolerating races with
//! exiting threads exactly as a live `/proc` consumer must. The same
//! code drives the live-Linux backend and the node simulation.

use crate::config::ZeroSumConfig;
use crate::hwt::HwtTracker;
use crate::lwp::LwpRegistry;
use crate::memory::MemoryTracker;
use zerosum_proc::{Pid, ProcSource, SourceError, Tid};
use zerosum_topology::CpuSet;

/// Static identity of a monitored process.
#[derive(Debug, Clone)]
pub struct ProcessInfo {
    /// Process id.
    pub pid: Pid,
    /// MPI rank, if the process is part of a parallel job.
    pub rank: Option<u32>,
    /// Hostname of the node the process runs on.
    pub hostname: String,
    /// GPU physical indices assigned to this process (via
    /// `--gpu-bind=closest` or visible-devices).
    pub gpus: Vec<u32>,
    /// The process affinity mask captured at initialization — ZeroSum
    /// reads it while wrapping `main()`, *before* any runtime rebinding.
    /// When empty, the monitor falls back to the main thread's mask at
    /// the first sample.
    pub cpus_allowed: CpuSet,
}

/// Monitoring state for one process.
#[derive(Debug)]
pub struct ProcessWatch {
    /// Identity.
    pub info: ProcessInfo,
    /// Per-thread registry.
    pub lwps: LwpRegistry,
    /// The process affinity mask (from the first status read).
    pub cpus_allowed: CpuSet,
    /// RSS history `(t_s, kib)`.
    pub rss_series: Vec<(f64, u64)>,
    /// True once the process has disappeared.
    pub gone: bool,
}

impl ProcessWatch {
    /// Latest RSS, KiB.
    pub fn rss_kib(&self) -> u64 {
        self.rss_series.last().map(|&(_, r)| r).unwrap_or(0)
    }
}

/// Counters describing how sampling went (exposed for overhead studies
/// and error-tolerance tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Completed sampling rounds.
    pub rounds: u64,
    /// Individual record reads that failed with `NotFound` (normal
    /// thread-exit races).
    pub vanished: u64,
    /// Other read errors.
    pub errors: u64,
}

/// The ZeroSum monitor.
#[derive(Debug)]
pub struct Monitor {
    /// Configuration.
    pub config: ZeroSumConfig,
    processes: Vec<ProcessWatch>,
    /// Node-wide hardware-thread utilization.
    pub hwt: HwtTracker,
    /// Node-wide memory tracking.
    pub mem: MemoryTracker,
    /// Sampling health counters.
    pub stats: SampleStats,
    /// Time of the last sample, seconds.
    pub last_t_s: f64,
    /// Live snapshot feed (§3.6): subscribers receive a
    /// [`crate::feed::SampleSnapshot`] after every sample.
    pub feed: crate::feed::SampleFeed,
}

impl Monitor {
    /// Creates a monitor with the given configuration.
    pub fn new(config: ZeroSumConfig) -> Self {
        Monitor {
            config,
            processes: Vec::new(),
            hwt: HwtTracker::new(),
            mem: MemoryTracker::new(),
            stats: SampleStats::default(),
            last_t_s: 0.0,
            feed: crate::feed::SampleFeed::new(),
        }
    }

    /// Registers a process to monitor.
    pub fn watch_process(&mut self, info: ProcessInfo) {
        let cpus_allowed = info.cpus_allowed.clone();
        self.processes.push(ProcessWatch {
            info,
            lwps: LwpRegistry::new(),
            cpus_allowed,
            rss_series: Vec::new(),
            gone: false,
        });
    }

    /// Marks `tid` of process `pid` as an OpenMP thread (OMPT callback
    /// path).
    pub fn register_omp_thread(&mut self, pid: Pid, tid: Tid) {
        if let Some(w) = self.processes.iter_mut().find(|w| w.info.pid == pid) {
            w.lwps.register_omp_thread(tid);
        }
    }

    /// The monitored processes.
    pub fn processes(&self) -> &[ProcessWatch] {
        &self.processes
    }

    /// Finds a watch by pid.
    pub fn process(&self, pid: Pid) -> Option<&ProcessWatch> {
        self.processes.iter().find(|w| w.info.pid == pid)
    }

    /// Union of all monitored processes' affinity masks — the CPU set the
    /// HWT report covers.
    pub fn watched_cpuset(&self) -> CpuSet {
        let mut out = CpuSet::new();
        for w in &self.processes {
            out.union_with(&w.cpus_allowed);
        }
        out
    }

    /// Performs one periodic observation at time `t_s` (seconds since
    /// monitoring began).
    pub fn sample(&mut self, t_s: f64, src: &dyn ProcSource) {
        self.stats.rounds += 1;
        self.last_t_s = t_s;
        match src.system_stat() {
            Ok(stat) => self.hwt.observe(t_s, &stat),
            Err(_) => self.stats.errors += 1,
        }
        let mut watched_rss: Vec<(Pid, u64)> = Vec::new();
        for w in &mut self.processes {
            if w.gone {
                continue;
            }
            let pid = w.info.pid;
            let tids = match src.list_tasks(pid) {
                Ok(t) => t,
                Err(SourceError::NotFound) => {
                    w.gone = true;
                    self.stats.vanished += 1;
                    continue;
                }
                Err(_) => {
                    self.stats.errors += 1;
                    continue;
                }
            };
            for &tid in &tids {
                let stat = match src.task_stat(pid, tid) {
                    Ok(s) => s,
                    Err(SourceError::NotFound) => {
                        // Thread exited between the directory listing and
                        // the read: the normal race of §3.1.1.
                        self.stats.vanished += 1;
                        continue;
                    }
                    Err(_) => {
                        self.stats.errors += 1;
                        continue;
                    }
                };
                let status = match src.task_status(pid, tid) {
                    Ok(s) => s,
                    Err(SourceError::NotFound) => {
                        self.stats.vanished += 1;
                        continue;
                    }
                    Err(_) => {
                        self.stats.errors += 1;
                        continue;
                    }
                };
                if tid == pid {
                    if w.cpus_allowed.is_empty() {
                        w.cpus_allowed = status.cpus_allowed.clone();
                    }
                    w.rss_series.push((t_s, status.vm_rss_kib));
                    watched_rss.push((pid, status.vm_rss_kib));
                }
                // schedstat is optional (CONFIG_SCHED_INFO); absence is
                // not an error.
                let schedstat = src.task_schedstat(pid, tid).ok();
                w.lwps
                    .observe_with_schedstat(pid, t_s, &stat, &status, schedstat);
            }
            w.lwps.mark_exited(&tids);
        }
        match src.meminfo() {
            Ok(mi) => self.mem.observe(t_s, &mi, &watched_rss),
            Err(_) => self.stats.errors += 1,
        }
        if self.feed.subscriber_count() > 0 {
            let snap = crate::feed::snapshot_of(self);
            self.feed.publish(snap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_sched::{Behavior, NodeSim, SchedParams, SimProcSource};
    use zerosum_topology::presets;

    fn sim_and_monitor() -> (NodeSim, Monitor, Pid) {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "app",
            CpuSet::from_indices([0u32, 1]),
            8_192,
            Behavior::FiniteCompute {
                remaining_us: 7_000_000,
                chunk_us: 10_000,
            },
        );
        sim.spawn_task(
            pid,
            "OpenMP",
            None,
            Behavior::FiniteCompute {
                remaining_us: 7_000_000,
                chunk_us: 10_000,
            },
            false,
        );
        let mut mon = Monitor::new(ZeroSumConfig::default());
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(0),
            hostname: "simnode0001".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        (sim, mon, pid)
    }

    #[test]
    fn periodic_sampling_builds_history() {
        let (mut sim, mut mon, pid) = sim_and_monitor();
        for i in 1..=5u64 {
            sim.run_for(1_000_000);
            mon.sample(i as f64, &SimProcSource::new(&sim));
        }
        assert_eq!(mon.stats.rounds, 5);
        assert_eq!(mon.stats.errors, 0);
        let w = mon.process(pid).unwrap();
        assert_eq!(w.cpus_allowed.to_list_string(), "0-1");
        assert_eq!(w.lwps.len(), 2);
        let main = w.lwps.track(pid).unwrap();
        assert_eq!(main.samples.len(), 5);
        // Both CPU-bound threads on two CPUs: ~100 jiffies/period each.
        assert!(main.avg_utime_per_period() > 50.0);
        assert!(w.rss_kib() > 0);
        assert_eq!(mon.watched_cpuset().to_list_string(), "0-1");
    }

    #[test]
    fn omp_registration_reclassifies() {
        let (mut sim, mut mon, pid) = sim_and_monitor();
        sim.run_for(1_000_000);
        mon.sample(1.0, &SimProcSource::new(&sim));
        let w = mon.process(pid).unwrap();
        let worker_tid = w
            .lwps
            .tracks()
            .find(|t| t.tid != pid)
            .map(|t| t.tid)
            .unwrap();
        // Named "OpenMP" ⇒ classified by name already.
        assert_eq!(
            w.lwps.track(worker_tid).unwrap().kind,
            crate::lwp::LwpKind::OpenMp
        );
        // Registering the main thread as OpenMP makes it Main, OpenMP.
        mon.register_omp_thread(pid, pid);
        sim.run_for(1_000_000);
        mon.sample(2.0, &SimProcSource::new(&sim));
        let w = mon.process(pid).unwrap();
        assert!(w.lwps.track(pid).unwrap().is_openmp);
    }

    #[test]
    fn exited_threads_marked_not_errors() {
        let (mut sim, mut mon, pid) = sim_and_monitor();
        sim.run_for(1_000_000);
        mon.sample(1.0, &SimProcSource::new(&sim));
        // Let the app finish; its threads leave /proc/<pid>/task.
        sim.run_until_apps_done(100_000, 60_000_000).unwrap();
        mon.sample(10.0, &SimProcSource::new(&sim));
        let w = mon.process(pid).unwrap();
        assert!(w.lwps.tracks().all(|t| t.exited));
        assert_eq!(mon.stats.errors, 0);
    }

    #[test]
    fn unknown_process_is_tolerated() {
        let (mut sim, mut mon, _) = sim_and_monitor();
        mon.watch_process(ProcessInfo {
            pid: 99_999,
            rank: None,
            hostname: "simnode0001".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        sim.run_for(1_000_000);
        mon.sample(1.0, &SimProcSource::new(&sim));
        assert!(mon.process(99_999).unwrap().gone);
        assert!(mon.stats.vanished >= 1);
    }

    #[test]
    fn memory_tracking_follows_rss() {
        let (mut sim, mut mon, pid) = sim_and_monitor();
        for i in 1..=3u64 {
            sim.run_for(1_000_000);
            mon.sample(i as f64, &SimProcSource::new(&sim));
        }
        let samples = mon.mem.samples();
        assert_eq!(samples.len(), 3);
        assert!(samples[2].watched_rss_kib >= 8_192 - 64);
        assert!(mon.mem.peak_rss_kib(pid).unwrap() >= 8_000);
    }
}
