//! The ZeroSum monitor: periodic observation of processes, threads,
//! hardware threads, and memory through a [`ProcSource`].
//!
//! This is the paper's asynchronous monitor thread (§3.1) as a library:
//! each call to [`Monitor::sample`] performs one periodic observation —
//! discover LWPs from the task list, read each one's `stat`/`status`,
//! snapshot `/proc/stat` and `/proc/meminfo` — tolerating races with
//! exiting threads exactly as a live `/proc` consumer must. The same
//! code drives the live-Linux backend and the node simulation.

use crate::config::{ResilienceConfig, ZeroSumConfig};
use crate::health::{FailureAction, HealthLedger, ProcessHealth};
use crate::hwt::HwtTracker;
use crate::lwp::LwpRegistry;
use crate::memory::MemoryTracker;
use std::collections::HashMap;
use zerosum_proc::{
    Pid, ProcSource, SchedStat, SourceError, SourceErrorKind, SourceResult, SystemStat, TaskStat,
    TaskStatus, Tid,
};
use zerosum_stats::Ring;
use zerosum_topology::CpuSet;

/// Static identity of a monitored process.
#[derive(Debug, Clone)]
pub struct ProcessInfo {
    /// Process id.
    pub pid: Pid,
    /// MPI rank, if the process is part of a parallel job.
    pub rank: Option<u32>,
    /// Hostname of the node the process runs on.
    pub hostname: String,
    /// GPU physical indices assigned to this process (via
    /// `--gpu-bind=closest` or visible-devices).
    pub gpus: Vec<u32>,
    /// The process affinity mask captured at initialization — ZeroSum
    /// reads it while wrapping `main()`, *before* any runtime rebinding.
    /// When empty, the monitor falls back to the main thread's mask at
    /// the first sample.
    pub cpus_allowed: CpuSet,
}

/// Monitoring state for one process.
#[derive(Debug)]
pub struct ProcessWatch {
    /// Identity.
    pub info: ProcessInfo,
    /// Per-thread registry.
    pub lwps: LwpRegistry,
    /// The process affinity mask (from the first status read).
    pub cpus_allowed: CpuSet,
    /// RSS history `(t_s, kib)` — a bounded ring (2:1 downsample on
    /// wrap).
    pub rss_series: Ring<(f64, u64)>,
    /// True once the process has disappeared.
    pub gone: bool,
    /// Sampling-health ledger and quarantine state for this process.
    pub health: ProcessHealth,
    /// Last `schedstat` seen per tid on a *fresh* read — the delta-
    /// sampling gate: an unchanged schedstat proves the thread was never
    /// dispatched, so its `stat`/`status` need not be re-read.
    last_schedstat: HashMap<Tid, SchedStat>,
}

impl ProcessWatch {
    /// Latest RSS, KiB.
    pub fn rss_kib(&self) -> u64 {
        self.rss_series.last().map(|&(_, r)| r).unwrap_or(0)
    }
}

/// Counters describing how sampling went (exposed for overhead studies
/// and error-tolerance tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Completed sampling rounds.
    pub rounds: u64,
    /// Individual record reads that failed with `NotFound` (normal
    /// thread-exit races).
    pub vanished: u64,
    /// Other read errors (counted once per failed record slot; the
    /// per-attempt tally lives in the [`HealthLedger`]s).
    pub errors: u64,
    /// Task slots filled from the last good sample because the thread's
    /// `schedstat` was unchanged (delta sampling) — two record reads
    /// saved each.
    pub delta_hits: u64,
}

/// The sampling supervisor's record of caught panics (§3.1: the monitor
/// must never take the application down with it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SupervisorStats {
    /// Panics caught by the sampling supervisor; each one cost (at
    /// most) the remainder of one round, after which sampling resumed.
    pub restarts: u64,
    /// The observation times (seconds) of the interrupted rounds — the
    /// gaps in the record (bounded ring).
    pub gap_times_s: Ring<f64>,
}

/// One period change made by the overhead governor, recorded for the
/// report: when and why the sampling period was widened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodChange {
    /// Observation time of the round whose cost triggered the change.
    pub t_s: f64,
    /// Period before the change, µs.
    pub from_us: u64,
    /// Period after the change, µs.
    pub to_us: u64,
    /// The measured round cost that exceeded the budget, µs.
    pub cost_us: u64,
    /// The budget the cost was compared against, µs.
    pub budget_us: u64,
}

/// Overload-control state: the overhead governor's effective period and
/// change log, plus the deadline watchdog's shedding record.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorState {
    /// The sampling period currently in effect, µs. Starts at the
    /// configured period; the governor doubles it (up to the configured
    /// ceiling) whenever a round's measured cost exceeds its budget.
    period_us: u64,
    /// Every period change, in order. Bounded by construction: each
    /// change at least doubles the period toward a fixed ceiling, so the
    /// log holds at most `log2(max_period/period)` entries per excursion.
    pub changes: Vec<PeriodChange>,
    /// Rounds whose cost exceeded the sampling deadline.
    pub overruns: u64,
    /// Rounds that dropped per-LWP detail after a deadline overrun.
    pub shed_rounds: u64,
    /// Set by the watchdog when the last round overran its deadline; the
    /// next round sheds worker-LWP reads (per-HWT totals, the main
    /// thread, and memory are always kept).
    shed_next: bool,
}

impl GovernorState {
    fn new(period_us: u64) -> Self {
        GovernorState {
            period_us,
            changes: Vec::new(),
            overruns: 0,
            shed_rounds: 0,
            shed_next: false,
        }
    }
}

/// The ZeroSum monitor.
#[derive(Debug)]
pub struct Monitor {
    /// Configuration.
    pub config: ZeroSumConfig,
    processes: Vec<ProcessWatch>,
    /// Node-wide hardware-thread utilization.
    pub hwt: HwtTracker,
    /// Node-wide memory tracking.
    pub mem: MemoryTracker,
    /// Sampling health counters.
    pub stats: SampleStats,
    /// Health ledger for node-level records (`/proc/stat`,
    /// `/proc/meminfo`) and per-process `list_tasks` scans.
    pub node_health: HealthLedger,
    /// Caught-panic record of the sampling supervisor.
    pub supervisor: SupervisorStats,
    /// Overload-control state (overhead governor + deadline watchdog).
    pub governor: GovernorState,
    /// Retry-backoff µs accrued since the last [`Monitor::take_backoff_us`]
    /// drain (charged to the monitor's CPU cost by the runner).
    pending_backoff_us: u64,
    /// Time of the last sample, seconds.
    pub last_t_s: f64,
    /// Live snapshot feed (§3.6): subscribers receive a
    /// [`crate::feed::SampleSnapshot`] after every sample.
    pub feed: crate::feed::SampleFeed,
    /// Reusable per-round records, overwritten by the `_into` reads —
    /// the sampling hot path allocates nothing in the steady state.
    scratch: SampleScratch,
}

/// One record of each kind plus the per-round vectors, reused across
/// rounds.
#[derive(Debug, Default)]
struct SampleScratch {
    sys: SystemStat,
    tids: Vec<Tid>,
    stat: TaskStat,
    status: TaskStatus,
    watched_rss: Vec<(Pid, u64)>,
}

impl Monitor {
    /// Creates a monitor with the given configuration.
    pub fn new(config: ZeroSumConfig) -> Self {
        let capacity = config.series_capacity;
        let period_us = config.period_us;
        Monitor {
            config,
            processes: Vec::new(),
            hwt: HwtTracker::with_capacity(capacity),
            mem: MemoryTracker::with_capacity(capacity),
            stats: SampleStats::default(),
            node_health: HealthLedger::default(),
            supervisor: SupervisorStats::default(),
            governor: GovernorState::new(period_us),
            pending_backoff_us: 0,
            last_t_s: 0.0,
            feed: crate::feed::SampleFeed::new(),
            scratch: SampleScratch::default(),
        }
    }

    /// Registers a process to monitor.
    pub fn watch_process(&mut self, info: ProcessInfo) {
        let cpus_allowed = info.cpus_allowed.clone();
        self.processes.push(ProcessWatch {
            info,
            lwps: LwpRegistry::with_capacity_and_period(
                self.config.series_capacity,
                self.config.period_us as f64 / 1e6,
            ),
            cpus_allowed,
            rss_series: Ring::with_capacity(self.config.series_capacity),
            gone: false,
            health: ProcessHealth::new(),
            last_schedstat: HashMap::new(),
        });
    }

    /// Marks `tid` of process `pid` as an OpenMP thread (OMPT callback
    /// path).
    pub fn register_omp_thread(&mut self, pid: Pid, tid: Tid) {
        if let Some(w) = self.processes.iter_mut().find(|w| w.info.pid == pid) {
            w.lwps.register_omp_thread(tid);
        }
    }

    /// The monitored processes.
    pub fn processes(&self) -> &[ProcessWatch] {
        &self.processes
    }

    /// Finds a watch by pid.
    pub fn process(&self, pid: Pid) -> Option<&ProcessWatch> {
        self.processes.iter().find(|w| w.info.pid == pid)
    }

    /// Union of all monitored processes' affinity masks — the CPU set the
    /// HWT report covers.
    pub fn watched_cpuset(&self) -> CpuSet {
        let mut out = CpuSet::new();
        for w in &self.processes {
            out.union_with(&w.cpus_allowed);
        }
        out
    }

    /// Performs one periodic observation at time `t_s` (seconds since
    /// monitoring began).
    ///
    /// The observation body runs under a supervisor: a panic anywhere in
    /// the sampling path is caught, recorded as a gap in
    /// [`Monitor::supervisor`], and sampling resumes at the next period —
    /// the monitor never takes the application down with it (§3.1).
    pub fn sample(&mut self, t_s: f64, src: &dyn ProcSource) {
        let body = std::panic::AssertUnwindSafe(|| self.sample_inner(t_s, src));
        if std::panic::catch_unwind(body).is_err() {
            // `self` may hold a partially-updated round; every tracker
            // tolerates that (observations are append-only), so restart
            // amounts to recording the gap and carrying on.
            self.supervisor.restarts += 1;
            self.supervisor.gap_times_s.push(t_s);
        }
    }

    /// Drains the retry-backoff µs accrued since the last drain. The
    /// runner charges this to the monitor's simulated CPU cost, so a
    /// retry storm shows up as monitor overhead exactly as it would on a
    /// live node.
    pub fn take_backoff_us(&mut self) -> u64 {
        std::mem::take(&mut self.pending_backoff_us)
    }

    /// The sampling period currently in effect, µs: the configured
    /// period, as widened by the overhead governor. The runner re-reads
    /// this every round.
    pub fn effective_period_us(&self) -> u64 {
        self.governor.period_us
    }

    /// Reports the measured CPU cost of the round observed at `t_s` to
    /// the overload controller. The runner calls this after each sample
    /// with the full round cost (cost model + retry backoff + injected
    /// procfs latency).
    ///
    /// Two independent responses:
    /// - **Watchdog**: cost above the per-round deadline counts an
    ///   overrun and sheds per-LWP detail next round (worker
    ///   `stat`/`status` reads are skipped; per-HWT totals, the main
    ///   thread, and memory are always kept).
    /// - **Governor**: cost above the period budget doubles the period
    ///   (up to the ceiling), recording a [`PeriodChange`] for the
    ///   report. Doubling the period doubles the budget, so a bounded
    ///   cost spike converges in `log2(spike)` rounds.
    pub fn note_round_cost(&mut self, t_s: f64, cost_us: u64) {
        let oh = self.config.overhead;
        let period = self.governor.period_us;
        if oh.shed {
            if cost_us > oh.deadline_us(period) {
                self.governor.overruns += 1;
                self.governor.shed_next = true;
            } else {
                self.governor.shed_next = false;
            }
        }
        if oh.governor && cost_us > oh.budget_us(period) && period < oh.max_period_us {
            let to = period.saturating_mul(2).min(oh.max_period_us);
            self.governor.changes.push(PeriodChange {
                t_s,
                from_us: period,
                to_us: to,
                cost_us,
                budget_us: oh.budget_us(period),
            });
            self.governor.period_us = to;
        }
    }

    /// The node ledger merged with every process ledger — the totals the
    /// chaos harness reconciles against an injected fault log.
    pub fn health_total(&self) -> HealthLedger {
        let mut total = self.node_health.clone();
        for w in &self.processes {
            total.merge(&w.health.ledger);
        }
        total
    }

    fn sample_inner(&mut self, t_s: f64, src: &dyn ProcSource) {
        self.stats.rounds += 1;
        self.last_t_s = t_s;
        let res = self.config.resilience;
        let delta_on = self.config.delta_sampling;
        // Deadline watchdog: after an overrun, this round sheds per-LWP
        // detail (worker stat/status reads) to get back under budget.
        let shed = std::mem::take(&mut self.governor.shed_next);
        if shed {
            self.governor.shed_rounds += 1;
        }
        match with_retry(
            &res,
            &mut self.node_health,
            &mut self.pending_backoff_us,
            || src.system_stat_into(&mut self.scratch.sys),
        ) {
            Ok(()) => self.hwt.observe(t_s, &self.scratch.sys),
            Err(_) => self.stats.errors += 1,
        }
        self.scratch.watched_rss.clear();
        for w in &mut self.processes {
            if w.gone {
                continue;
            }
            let pid = w.info.pid;
            match with_retry(
                &res,
                &mut self.node_health,
                &mut self.pending_backoff_us,
                || src.list_tasks_into(pid, &mut self.scratch.tids),
            ) {
                Ok(()) => {}
                Err(SourceError::NotFound) => {
                    w.gone = true;
                    self.stats.vanished += 1;
                    continue;
                }
                Err(_) => {
                    self.stats.errors += 1;
                    continue;
                }
            }
            for &tid in &self.scratch.tids {
                if shed && tid != pid {
                    // Shed round: drop per-LWP detail, keep per-HWT
                    // totals (system stat), the main thread (RSS), and
                    // memory.
                    continue;
                }
                if w.health.should_skip(tid) {
                    // Quarantined after persistent failures; re-probed
                    // once per `reprobe_after` rounds.
                    continue;
                }
                // schedstat first: it is both the wait-time source and
                // the delta gate. Optional (CONFIG_SCHED_INFO); absence
                // is not an error and is never retried.
                let schedstat = src.task_schedstat(pid, tid).ok();
                if delta_on && tid != pid {
                    // Unchanged schedstat ⇒ the thread was never
                    // dispatched since the last fresh read ⇒ its `stat`
                    // and `status` are bytewise unchanged; reuse the
                    // last good pair. The main thread is exempt: it
                    // carries the process-wide RSS, which moves without
                    // the thread running.
                    if let (Some(ss), Some(prev)) = (schedstat, w.last_schedstat.get(&tid)) {
                        if ss == *prev {
                            if let Some((stat, status)) = w.health.last_good(tid) {
                                self.stats.delta_hits += 1;
                                w.lwps
                                    .observe_with_schedstat(pid, t_s, stat, status, Some(ss));
                                continue;
                            }
                        }
                    }
                }
                let read = match with_retry(
                    &res,
                    &mut w.health.ledger,
                    &mut self.pending_backoff_us,
                    || src.task_stat_into(pid, tid, &mut self.scratch.stat),
                ) {
                    Ok(()) => with_retry(
                        &res,
                        &mut w.health.ledger,
                        &mut self.pending_backoff_us,
                        || src.task_status_into(pid, tid, &mut self.scratch.status),
                    ),
                    Err(e) => Err(e),
                };
                let fresh = match read {
                    Ok(()) => {
                        w.health
                            .record_success(tid, &self.scratch.stat, &self.scratch.status);
                        if let Some(ss) = schedstat {
                            w.last_schedstat.insert(tid, ss);
                        }
                        true
                    }
                    Err(SourceError::NotFound) => {
                        // Thread exited between the directory listing and
                        // the read: the normal race of §3.1.1.
                        self.stats.vanished += 1;
                        w.health.forget(tid);
                        w.last_schedstat.remove(&tid);
                        continue;
                    }
                    Err(_) => {
                        self.stats.errors += 1;
                        match w.health.record_failure(tid, &res) {
                            FailureAction::Interpolate(pair) => {
                                // Degraded: repeat the last good sample so
                                // the time series stays continuous; the
                                // ledger flags the substitution.
                                self.scratch.stat.clone_from(&pair.0);
                                self.scratch.status.clone_from(&pair.1);
                                false
                            }
                            FailureAction::Drop => continue,
                        }
                    }
                };
                if tid == pid {
                    if w.cpus_allowed.is_empty() {
                        w.cpus_allowed.copy_from(&self.scratch.status.cpus_allowed);
                    }
                    w.rss_series.push((t_s, self.scratch.status.vm_rss_kib));
                    self.scratch
                        .watched_rss
                        .push((pid, self.scratch.status.vm_rss_kib));
                }
                // Interpolated rounds report no schedstat — a fresh
                // schedstat against a stale stat would skew wait deltas.
                let ss = if fresh { schedstat } else { None };
                w.lwps.observe_with_schedstat(
                    pid,
                    t_s,
                    &self.scratch.stat,
                    &self.scratch.status,
                    ss,
                );
            }
            w.lwps.mark_exited(&self.scratch.tids);
        }
        match with_retry(
            &res,
            &mut self.node_health,
            &mut self.pending_backoff_us,
            || src.meminfo(),
        ) {
            Ok(mi) => self.mem.observe(t_s, &mi, &self.scratch.watched_rss),
            Err(_) => self.stats.errors += 1,
        }
        if self.feed.subscriber_count() > 0 {
            let snap = crate::feed::snapshot_of(self);
            self.feed.publish(snap);
        }
    }
}

/// Runs a source read with bounded retry on transient `Io` failures.
///
/// Every error received — including each failed retry attempt — is
/// tallied in `ledger.errors_by_kind`, so ledger totals reconcile 1:1
/// against a fault injector's log. Retry backoff doubles per attempt and
/// is accrued into `backoff_acc` as virtual-time monitor cost rather
/// than sleeping (sampling stays deterministic).
fn with_retry<T>(
    cfg: &ResilienceConfig,
    ledger: &mut HealthLedger,
    backoff_acc: &mut u64,
    mut call: impl FnMut() -> SourceResult<T>,
) -> SourceResult<T> {
    let mut attempts = 0u32;
    loop {
        match call() {
            Ok(v) => {
                if attempts > 0 {
                    ledger.retried += 1;
                }
                return Ok(v);
            }
            Err(e) => {
                ledger.note_error(e.kind());
                if e.kind() == SourceErrorKind::Io && attempts < cfg.retry_limit {
                    let backoff = cfg.backoff_us << attempts.min(16);
                    ledger.backoff_us += backoff;
                    *backoff_acc += backoff;
                    attempts += 1;
                    continue;
                }
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_sched::{Behavior, NodeSim, SchedParams, SimProcSource};
    use zerosum_topology::presets;

    fn sim_and_monitor() -> (NodeSim, Monitor, Pid) {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "app",
            CpuSet::from_indices([0u32, 1]),
            8_192,
            Behavior::FiniteCompute {
                remaining_us: 7_000_000,
                chunk_us: 10_000,
            },
        );
        sim.spawn_task(
            pid,
            "OpenMP",
            None,
            Behavior::FiniteCompute {
                remaining_us: 7_000_000,
                chunk_us: 10_000,
            },
            false,
        );
        let mut mon = Monitor::new(ZeroSumConfig::default());
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(0),
            hostname: "simnode0001".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        (sim, mon, pid)
    }

    #[test]
    fn periodic_sampling_builds_history() {
        let (mut sim, mut mon, pid) = sim_and_monitor();
        for i in 1..=5u64 {
            sim.run_for(1_000_000);
            mon.sample(i as f64, &SimProcSource::new(&sim));
        }
        assert_eq!(mon.stats.rounds, 5);
        assert_eq!(mon.stats.errors, 0);
        let w = mon.process(pid).unwrap();
        assert_eq!(w.cpus_allowed.to_list_string(), "0-1");
        assert_eq!(w.lwps.len(), 2);
        let main = w.lwps.track(pid).unwrap();
        assert_eq!(main.samples.len(), 5);
        // Both CPU-bound threads on two CPUs: ~100 jiffies/period each.
        assert!(main.avg_utime_per_period() > 50.0);
        assert!(w.rss_kib() > 0);
        assert_eq!(mon.watched_cpuset().to_list_string(), "0-1");
    }

    #[test]
    fn omp_registration_reclassifies() {
        let (mut sim, mut mon, pid) = sim_and_monitor();
        sim.run_for(1_000_000);
        mon.sample(1.0, &SimProcSource::new(&sim));
        let w = mon.process(pid).unwrap();
        let worker_tid = w
            .lwps
            .tracks()
            .find(|t| t.tid != pid)
            .map(|t| t.tid)
            .unwrap();
        // Named "OpenMP" ⇒ classified by name already.
        assert_eq!(
            w.lwps.track(worker_tid).unwrap().kind,
            crate::lwp::LwpKind::OpenMp
        );
        // Registering the main thread as OpenMP makes it Main, OpenMP.
        mon.register_omp_thread(pid, pid);
        sim.run_for(1_000_000);
        mon.sample(2.0, &SimProcSource::new(&sim));
        let w = mon.process(pid).unwrap();
        assert!(w.lwps.track(pid).unwrap().is_openmp);
    }

    #[test]
    fn exited_threads_marked_not_errors() {
        let (mut sim, mut mon, pid) = sim_and_monitor();
        sim.run_for(1_000_000);
        mon.sample(1.0, &SimProcSource::new(&sim));
        // Let the app finish; its threads leave /proc/<pid>/task.
        sim.run_until_apps_done(100_000, 60_000_000).unwrap();
        mon.sample(10.0, &SimProcSource::new(&sim));
        let w = mon.process(pid).unwrap();
        assert!(w.lwps.tracks().all(|t| t.exited));
        assert_eq!(mon.stats.errors, 0);
    }

    #[test]
    fn unknown_process_is_tolerated() {
        let (mut sim, mut mon, _) = sim_and_monitor();
        mon.watch_process(ProcessInfo {
            pid: 99_999,
            rank: None,
            hostname: "simnode0001".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        sim.run_for(1_000_000);
        mon.sample(1.0, &SimProcSource::new(&sim));
        assert!(mon.process(99_999).unwrap().gone);
        assert!(mon.stats.vanished >= 1);
    }

    #[test]
    fn transient_io_recovers_by_retry() {
        use zerosum_proc::fault::{FaultInjector, FaultKind, FaultPlan, ScriptedFault};
        let (mut sim, mut mon, pid) = sim_and_monitor();
        // Call order per round: system_stat, list_tasks, then per tid
        // schedstat/stat/status. Call 4 is the first task_stat.
        let inj = FaultInjector::new(FaultPlan {
            seed: 5,
            scripted: vec![ScriptedFault {
                call: 4,
                kind: FaultKind::IoTransient,
            }],
            ..Default::default()
        });
        sim.run_for(1_000_000);
        let src = SimProcSource::new(&sim);
        mon.sample(1.0, &inj.wrap(&src));
        let ledger = mon.process(pid).unwrap().health.ledger.clone();
        assert_eq!(ledger.retried, 1);
        assert_eq!(ledger.degraded, 0);
        assert!(ledger.backoff_us > 0);
        assert_eq!(mon.take_backoff_us(), ledger.backoff_us);
        assert_eq!(mon.take_backoff_us(), 0, "drain empties the accrual");
        // The slot completed: both threads observed this round.
        assert_eq!(ledger.ok, 2);
        assert_eq!(mon.stats.errors, 0, "recovered reads are not errors");
    }

    #[test]
    fn persistent_failure_interpolates_then_quarantines() {
        use zerosum_proc::fault::{FaultInjector, FaultPlan, FaultRates, Op};
        let (mut sim, mut mon, pid) = sim_and_monitor();
        mon.config.resilience.retry_limit = 0;
        mon.config.resilience.quarantine_after = 2;
        mon.config.resilience.reprobe_after = 3;
        // The main thread's stat reads fail permanently from round 2 on.
        let inj = FaultInjector::new(FaultPlan {
            seed: 9,
            ..Default::default()
        });
        sim.run_for(1_000_000);
        let src = SimProcSource::new(&sim);
        mon.sample(1.0, &inj.wrap(&src));
        let rss_after_good = mon.process(pid).unwrap().rss_kib();
        assert!(rss_after_good > 0);
        let inj_bad = FaultInjector::new(FaultPlan {
            seed: 9,
            per_op: vec![(
                Op::TaskStat,
                FaultRates {
                    io_transient: 1.0,
                    ..Default::default()
                },
            )],
            ..Default::default()
        });
        for round in 2..=6u64 {
            sim.run_for(1_000_000);
            let src = SimProcSource::new(&sim);
            mon.sample(round as f64, &inj_bad.wrap(&src));
        }
        let w = mon.process(pid).unwrap();
        // Rounds 2 and 3 fail and interpolate; the quarantine then
        // silences rounds 4-6 for both tids.
        assert_eq!(w.health.ledger.degraded, 4, "2 rounds x 2 tids");
        assert_eq!(w.health.ledger.quarantine_events, 2);
        assert_eq!(w.health.quarantined_now(), 2);
        // Interpolation kept the main thread's series continuous.
        let main = w.lwps.track(pid).unwrap();
        assert_eq!(main.samples.len(), 3);
        assert_eq!(w.rss_series.len(), 3);
        assert_eq!(w.rss_kib(), rss_after_good, "stale RSS repeated");
        // Ledger error totals reconcile exactly against the fault log.
        let totals = mon.health_total();
        let injected = inj_bad.error_counts_excluding(&[Op::SchedStat]);
        assert_eq!(totals.errors_by_kind, injected);
    }

    #[test]
    fn quarantined_tid_reprobes_and_recovers() {
        use zerosum_proc::fault::{FaultInjector, FaultPlan, FaultRates, Op};
        let (mut sim, mut mon, pid) = sim_and_monitor();
        mon.config.resilience.retry_limit = 0;
        mon.config.resilience.quarantine_after = 1;
        mon.config.resilience.reprobe_after = 1;
        let inj_bad = FaultInjector::new(FaultPlan {
            seed: 3,
            per_op: vec![(
                Op::TaskStat,
                FaultRates {
                    io_transient: 1.0,
                    ..Default::default()
                },
            )],
            ..Default::default()
        });
        sim.run_for(1_000_000);
        let src = SimProcSource::new(&sim);
        mon.sample(1.0, &inj_bad.wrap(&src));
        assert_eq!(mon.process(pid).unwrap().health.quarantined_now(), 2);
        // Round 2: skipped (no reads). Round 3: re-probe against a healthy
        // source succeeds and lifts the quarantine.
        for round in 2..=3u64 {
            sim.run_for(1_000_000);
            let src = SimProcSource::new(&sim);
            mon.sample(round as f64, &src);
        }
        let w = mon.process(pid).unwrap();
        assert_eq!(w.health.quarantined_now(), 0);
        assert_eq!(w.health.ledger.reprobes, 2);
        assert_eq!(w.health.ledger.ok, 2, "re-probed round observed both tids");
    }

    #[test]
    fn supervisor_catches_injected_panic_and_sampling_resumes() {
        use zerosum_proc::fault::{FaultInjector, FaultKind, FaultPlan, ScriptedFault};
        let (mut sim, mut mon, pid) = sim_and_monitor();
        let inj = FaultInjector::new(FaultPlan {
            seed: 1,
            scripted: vec![ScriptedFault {
                call: 1,
                kind: FaultKind::Panic,
            }],
            ..Default::default()
        });
        // Keep the default hook from spamming test output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        sim.run_for(1_000_000);
        let src = SimProcSource::new(&sim);
        mon.sample(1.0, &inj.wrap(&src));
        std::panic::set_hook(prev);
        assert_eq!(mon.supervisor.restarts, 1);
        assert_eq!(mon.supervisor.gap_times_s.as_slice(), [1.0]);
        // The next (clean) round proceeds normally.
        sim.run_for(1_000_000);
        let src = SimProcSource::new(&sim);
        mon.sample(2.0, &src);
        assert_eq!(mon.stats.rounds, 2);
        let w = mon.process(pid).unwrap();
        assert_eq!(w.lwps.track(pid).unwrap().samples.len(), 1);
    }

    #[test]
    fn governor_converges_after_cost_spike_and_records_changes() {
        let mut mon = Monitor::new(ZeroSumConfig::default());
        assert_eq!(mon.effective_period_us(), 1_000_000);
        // Steady state: the paper's ~5 ms round cost is under the 10 ms
        // budget; nothing changes.
        for round in 1..=3u64 {
            mon.note_round_cost(round as f64, 5_000);
        }
        assert!(mon.governor.changes.is_empty());
        assert_eq!(mon.effective_period_us(), 1_000_000);
        // A 4x cost spike (20 ms) exceeds the 10 ms budget: the governor
        // must converge to a wider period within 5 rounds.
        for round in 4..=8u64 {
            mon.note_round_cost(round as f64, 20_000);
        }
        assert_eq!(
            mon.effective_period_us(),
            2_000_000,
            "one doubling suffices"
        );
        assert_eq!(mon.governor.changes.len(), 1, "each change recorded once");
        let ch = mon.governor.changes[0];
        assert_eq!((ch.from_us, ch.to_us), (1_000_000, 2_000_000));
        assert_eq!(ch.cost_us, 20_000);
        assert_eq!(ch.budget_us, 10_000);
        assert!(
            (ch.t_s - 4.0).abs() < 1e-9,
            "changed on the first bad round"
        );
        // 20 ms is well under the widened 1 s deadline: no shedding.
        assert_eq!(mon.governor.overruns, 0);
    }

    #[test]
    fn governor_respects_ceiling_and_disable() {
        let mut mon = Monitor::new(ZeroSumConfig::default());
        // An absurd sustained cost walks the period up to the ceiling and
        // stops; the change log stays bounded (log2 of the excursion).
        for round in 1..=20u64 {
            mon.note_round_cost(round as f64, u64::MAX / 4);
        }
        assert_eq!(mon.effective_period_us(), 16_000_000);
        assert_eq!(mon.governor.changes.len(), 4, "1s -> 2 -> 4 -> 8 -> 16");
        // Disabled governor never moves the period.
        let cfg = ZeroSumConfig::default().with_overhead(crate::config::OverheadConfig {
            governor: false,
            ..Default::default()
        });
        let mut mon = Monitor::new(cfg);
        mon.note_round_cost(1.0, u64::MAX / 4);
        assert_eq!(mon.effective_period_us(), 1_000_000);
        assert!(mon.governor.changes.is_empty());
    }

    #[test]
    fn deadline_overrun_sheds_lwp_detail_but_keeps_totals() {
        let (mut sim, mut mon, pid) = sim_and_monitor();
        sim.run_for(1_000_000);
        mon.sample(1.0, &SimProcSource::new(&sim));
        // Round 1 blows the 500 ms deadline: the watchdog arms shedding.
        mon.note_round_cost(1.0, 600_000);
        assert_eq!(mon.governor.overruns, 1);
        sim.run_for(1_000_000);
        mon.sample(2.0, &SimProcSource::new(&sim));
        mon.note_round_cost(2.0, 5_000);
        let w = mon.process(pid).unwrap();
        let worker = w.lwps.tracks().find(|t| t.tid != pid).unwrap();
        assert_eq!(worker.samples.len(), 1, "worker detail shed in round 2");
        assert_eq!(w.lwps.track(pid).unwrap().samples.len(), 2, "main kept");
        assert_eq!(w.rss_series.len(), 2, "RSS kept");
        assert_eq!(mon.hwt.sample_count(), 1, "per-HWT totals kept");
        assert_eq!(mon.mem.samples().len(), 2, "memory kept");
        assert_eq!(mon.governor.shed_rounds, 1);
        // The cheap round disarmed the watchdog: round 3 is full detail.
        sim.run_for(1_000_000);
        mon.sample(3.0, &SimProcSource::new(&sim));
        let w = mon.process(pid).unwrap();
        assert_eq!(
            w.lwps
                .tracks()
                .find(|t| t.tid != pid)
                .unwrap()
                .samples
                .len(),
            2
        );
    }

    #[test]
    fn recycled_pid_reopens_series_at_monitor_level() {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "app",
            CpuSet::from_indices([0u32, 1]),
            4_096,
            Behavior::FiniteCompute {
                remaining_us: 1_500_000,
                chunk_us: 10_000,
            },
        );
        let mut mon = Monitor::new(ZeroSumConfig::default());
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(0),
            hostname: "simnode0001".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        sim.run_for(1_000_000);
        mon.sample(1.0, &SimProcSource::new(&sim));
        // Let the first incarnation exit, then recycle its pid for an
        // unrelated process (the OS reuse race of §3.1.1).
        sim.run_until_apps_done(10_000, 30_000_000).unwrap();
        sim.respawn_process_with_pid(
            pid,
            "imposter",
            CpuSet::from_indices([2u32, 3]),
            2_048,
            Behavior::FiniteCompute {
                remaining_us: 5_000_000,
                chunk_us: 10_000,
            },
        );
        sim.run_for(1_000_000);
        mon.sample(2.0, &SimProcSource::new(&sim));
        let w = mon.process(pid).unwrap();
        // The starttime mismatch retired the old series and opened a new
        // one instead of splicing two processes into one history.
        let tracks: Vec<_> = w.lwps.tracks().filter(|t| t.tid == pid).collect();
        assert_eq!(tracks.len(), 2, "old series closed, new series opened");
        let retired = tracks.iter().find(|t| t.retired).unwrap();
        let live = tracks.iter().find(|t| !t.retired).unwrap();
        assert!(retired.exited);
        assert_eq!(retired.samples.len(), 1);
        assert_eq!(live.samples.len(), 1);
        assert_eq!(live.name, "imposter");
        assert!(live.starttime > retired.starttime);
        assert_eq!(w.lwps.track(pid).unwrap().name, "imposter", "live wins");
    }

    #[test]
    fn memory_tracking_follows_rss() {
        let (mut sim, mut mon, pid) = sim_and_monitor();
        for i in 1..=3u64 {
            sim.run_for(1_000_000);
            mon.sample(i as f64, &SimProcSource::new(&sim));
        }
        let samples = mon.mem.samples();
        assert_eq!(samples.len(), 3);
        assert!(samples[2].watched_rss_kib >= 8_192 - 64);
        assert!(mon.mem.peak_rss_kib(pid).unwrap() >= 8_000);
    }
}
