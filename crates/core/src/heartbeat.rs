//! Progress detection and heartbeats (§3.3).
//!
//! ZeroSum "has the ability to periodically write data to stdout
//! indicating that at a minimum, the application is viable", and the
//! paper sketches deadlock detection from the per-LWP idle/user/system
//! counters and states as future work. Both are implemented here: a
//! heartbeat line per sample, and a stall detector that flags windows in
//! which no application thread consumed CPU.

use crate::lwp::LwpKind;
use crate::monitor::Monitor;
use zerosum_proc::TaskState;

/// The liveness classification of the application at a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// At least one application thread consumed CPU recently.
    Progressing,
    /// No CPU consumed for fewer windows than the deadlock threshold.
    Stalled {
        /// Consecutive no-progress windows so far.
        windows: u32,
    },
    /// No progress for at least the configured number of windows while
    /// threads still exist — a possible deadlock.
    PossibleDeadlock {
        /// Consecutive no-progress windows.
        windows: u32,
        /// Number of threads blocked in sleep states.
        blocked_threads: usize,
    },
    /// Every application thread has exited.
    Finished,
}

/// Tracks progress across samples.
#[derive(Debug, Default)]
pub struct ProgressTracker {
    stall_windows: u32,
}

impl ProgressTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies liveness from the monitor's latest state and updates
    /// the stall counter. Call once per sample.
    pub fn assess(&mut self, monitor: &Monitor) -> Liveness {
        let mut any_live_thread = false;
        let mut any_progress = false;
        let mut blocked = 0usize;
        for w in monitor.processes() {
            for t in w.lwps.tracks() {
                if t.exited || t.kind == LwpKind::ZeroSum || t.kind == LwpKind::Other {
                    continue;
                }
                any_live_thread = true;
                if t.progressed_recently(1) {
                    any_progress = true;
                }
                if let Some(s) = t.last() {
                    if matches!(s.state, TaskState::Sleeping | TaskState::DiskSleep) {
                        blocked += 1;
                    }
                }
            }
        }
        if !any_live_thread {
            self.stall_windows = 0;
            return Liveness::Finished;
        }
        if any_progress {
            self.stall_windows = 0;
            return Liveness::Progressing;
        }
        self.stall_windows += 1;
        if self.stall_windows >= monitor.config.deadlock_windows {
            Liveness::PossibleDeadlock {
                windows: self.stall_windows,
                blocked_threads: blocked,
            }
        } else {
            Liveness::Stalled {
                windows: self.stall_windows,
            }
        }
    }

    /// The heartbeat line written to stdout each period.
    pub fn heartbeat_line(&self, monitor: &Monitor, t_s: f64) -> String {
        let threads: usize = monitor
            .processes()
            .iter()
            .map(|w| w.lwps.tracks().filter(|t| !t.exited).count())
            .sum();
        format!(
            "ZeroSum: t={t_s:.0}s, {} process(es), {} live thread(s), sample {}",
            monitor.processes().len(),
            threads,
            monitor.stats.rounds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZeroSumConfig;
    use crate::monitor::ProcessInfo;
    use zerosum_proc::Pid;
    use zerosum_sched::{Behavior, NodeSim, SchedParams, SimProcSource};
    use zerosum_topology::{presets, CpuSet};

    fn setup(behavior: Behavior) -> (NodeSim, Monitor, Pid) {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process("app", CpuSet::single(0), 64, behavior);
        let mut mon = Monitor::new(ZeroSumConfig {
            deadlock_windows: 3,
            ..Default::default()
        });
        mon.watch_process(ProcessInfo {
            pid,
            rank: None,
            hostname: "n".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        (sim, mon, pid)
    }

    #[test]
    fn busy_app_is_progressing() {
        let (mut sim, mut mon, _) = setup(Behavior::FiniteCompute {
            remaining_us: 10_000_000,
            chunk_us: 10_000,
        });
        let mut tracker = ProgressTracker::new();
        for i in 1..=3u64 {
            sim.run_for(1_000_000);
            mon.sample(i as f64, &SimProcSource::new(&sim));
        }
        assert_eq!(tracker.assess(&mon), Liveness::Progressing);
        let hb = tracker.heartbeat_line(&mon, 3.0);
        assert!(hb.contains("1 process(es)"));
        assert!(hb.contains("1 live thread(s)"));
    }

    #[test]
    fn sleeping_app_escalates_to_deadlock() {
        let (mut sim, mut mon, _) = setup(Behavior::Sleeper);
        let mut tracker = ProgressTracker::new();
        let mut last = Liveness::Progressing;
        for i in 1..=6u64 {
            sim.run_for(1_000_000);
            mon.sample(i as f64, &SimProcSource::new(&sim));
            last = tracker.assess(&mon);
        }
        match last {
            Liveness::PossibleDeadlock {
                windows,
                blocked_threads,
            } => {
                assert!(windows >= 3);
                assert_eq!(blocked_threads, 1);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn finished_app_reports_finished() {
        let (mut sim, mut mon, _) = setup(Behavior::FiniteCompute {
            remaining_us: 100_000,
            chunk_us: 10_000,
        });
        let mut tracker = ProgressTracker::new();
        sim.run_until_apps_done(100_000, 60_000_000).unwrap();
        mon.sample(1.0, &SimProcSource::new(&sim));
        assert_eq!(tracker.assess(&mon), Liveness::Finished);
    }

    #[test]
    fn deadlock_fires_exactly_at_threshold_window() {
        // deadlock_windows = 3: windows 1 and 2 are Stalled, window 3 —
        // not 2, not 4 — escalates, and the count is carried verbatim.
        let (mut sim, mut mon, _) = setup(Behavior::Sleeper);
        let mut tracker = ProgressTracker::new();
        let mut seq = Vec::new();
        for i in 1..=5u64 {
            sim.run_for(1_000_000);
            mon.sample(i as f64, &SimProcSource::new(&sim));
            seq.push(tracker.assess(&mon));
        }
        // First observation of a new thread counts as progress; the
        // stall clock starts at the second sample.
        assert_eq!(seq[0], Liveness::Progressing);
        assert_eq!(seq[1], Liveness::Stalled { windows: 1 });
        assert_eq!(seq[2], Liveness::Stalled { windows: 2 });
        assert_eq!(
            seq[3],
            Liveness::PossibleDeadlock {
                windows: 3,
                blocked_threads: 1
            }
        );
        assert_eq!(
            seq[4],
            Liveness::PossibleDeadlock {
                windows: 4,
                blocked_threads: 1
            }
        );
    }

    #[test]
    fn recovery_one_window_before_threshold_restarts_count() {
        // Stall right up to the edge (2 of 3 windows), recover, then
        // stall again: the counter restarts at 1 — a recovered stall
        // must not inherit the old window count.
        let (mut sim, mut mon, _) = setup(Behavior::FiniteCompute {
            remaining_us: 20_000_000,
            chunk_us: 10_000,
        });
        let mut tracker = ProgressTracker::new();
        sim.run_for(1_000_000);
        mon.sample(1.0, &SimProcSource::new(&sim));
        tracker.assess(&mon);
        mon.sample(2.0, &SimProcSource::new(&sim));
        assert_eq!(tracker.assess(&mon), Liveness::Stalled { windows: 1 });
        mon.sample(3.0, &SimProcSource::new(&sim));
        assert_eq!(tracker.assess(&mon), Liveness::Stalled { windows: 2 });
        sim.run_for(1_000_000);
        mon.sample(4.0, &SimProcSource::new(&sim));
        assert_eq!(tracker.assess(&mon), Liveness::Progressing);
        mon.sample(5.0, &SimProcSource::new(&sim));
        assert_eq!(tracker.assess(&mon), Liveness::Stalled { windows: 1 });
    }

    #[test]
    fn finish_during_stalled_window_reports_finished_not_deadlock() {
        // The app stalls for two windows, then its last thread exits:
        // the next assessment is Finished (and stays Finished), never
        // passing through PossibleDeadlock.
        let (mut sim, mut mon, _) = setup(Behavior::FiniteCompute {
            remaining_us: 100_000,
            chunk_us: 10_000,
        });
        let mut tracker = ProgressTracker::new();
        sim.run_for(10_000);
        mon.sample(1.0, &SimProcSource::new(&sim));
        tracker.assess(&mon);
        mon.sample(2.0, &SimProcSource::new(&sim));
        assert_eq!(tracker.assess(&mon), Liveness::Stalled { windows: 1 });
        mon.sample(3.0, &SimProcSource::new(&sim));
        assert_eq!(tracker.assess(&mon), Liveness::Stalled { windows: 2 });
        sim.run_until_apps_done(10_000, 60_000_000).unwrap();
        mon.sample(4.0, &SimProcSource::new(&sim));
        assert_eq!(tracker.assess(&mon), Liveness::Finished);
        mon.sample(5.0, &SimProcSource::new(&sim));
        assert_eq!(tracker.assess(&mon), Liveness::Finished);
    }

    #[test]
    fn stall_counter_resets_on_progress() {
        let (mut sim, mut mon, _) = setup(Behavior::FiniteCompute {
            remaining_us: 10_000_000,
            chunk_us: 10_000,
        });
        let mut tracker = ProgressTracker::new();
        sim.run_for(1_000_000);
        mon.sample(1.0, &SimProcSource::new(&sim));
        // Two samples with no intervening sim time: no progress.
        mon.sample(2.0, &SimProcSource::new(&sim));
        assert!(matches!(tracker.assess(&mon), Liveness::Stalled { .. }));
        sim.run_for(1_000_000);
        mon.sample(3.0, &SimProcSource::new(&sim));
        assert_eq!(tracker.assess(&mon), Liveness::Progressing);
    }
}
