//! Data exportation (§3.6).
//!
//! Every monitored process gets a log containing the human-readable
//! report plus a detailed CSV dump of all periodic data — LWP series
//! (state, faults, swap pages, last CPU, context switches) and HWT
//! series — "allowing for time-series analysis of the periodic data".

use crate::monitor::{Monitor, ProcessWatch};
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use zerosum_proc::{Pid, SourceErrorKind};

/// Last line of every completely-written log file. Its absence means the
/// file is torn — which [`atomic_write`] makes impossible short of a
/// filesystem fault, since readers only ever see fully-renamed files.
pub const LOG_END_MARKER: &str = "=== END (complete) ===";

/// First line of a log flushed on the abnormal-exit path: the data is
/// whatever had been collected when the process died, written atomically
/// (the file still ends with [`LOG_END_MARKER`]).
pub const LOG_PARTIAL_MARKER: &str = "=== PARTIAL (abnormal exit) ===";

/// Crash-safe file write: the content lands in a temporary file in the
/// same directory, which is then renamed over the destination. Readers
/// never observe a half-written file, even if the writer dies mid-write
/// — the §3.6 log survives the monitored application's own crash.
pub fn atomic_write(path: &Path, content: &str) -> io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "zerosum".into());
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

/// The per-LWP CSV dump for one process. Columns follow §3.6: state,
/// minor/major faults, pages swapped, and the CPU the LWP last ran on,
/// plus times and context switches.
pub fn lwp_csv(watch: &ProcessWatch) -> String {
    let mut out = String::from(
        "time,tid,type,state,utime,stime,minflt,majflt,nswap,processor,vcsw,nvcsw,wait_ns\n",
    );
    let mut tracks: Vec<_> = watch.lwps.tracks().collect();
    tracks.sort_by_key(|t| t.tid);
    for t in tracks {
        let label = t.kind.label(t.is_openmp).replace(", ", "+");
        for s in &t.samples {
            writeln!(
                out,
                "{:.3},{},{},{},{},{},{},{},{},{},{},{},{}",
                s.t_s,
                t.tid,
                label,
                s.state.code(),
                s.utime,
                s.stime,
                s.minflt,
                s.majflt,
                s.nswap,
                s.processor,
                s.vcsw,
                s.nvcsw,
                s.wait_ns.map(|w| w.to_string()).unwrap_or_default()
            )
            .unwrap();
        }
    }
    out
}

/// The per-HWT utilization CSV (Figure 7's data): one row per CPU per
/// interval.
pub fn hwt_csv(monitor: &Monitor) -> String {
    let mut out = String::from("time,cpu,idle_pct,system_pct,user_pct\n");
    for cpu in monitor.hwt.cpu_indices() {
        if let Some(samples) = monitor.hwt.samples(cpu) {
            for s in samples {
                writeln!(
                    out,
                    "{:.3},{},{:.4},{:.4},{:.4}",
                    s.t_s, cpu, s.idle_pct, s.system_pct, s.user_pct
                )
                .unwrap();
            }
        }
    }
    out
}

/// The node memory CSV.
pub fn memory_csv(monitor: &Monitor) -> String {
    let mut out = String::from("time,total_kib,available_kib,watched_rss_kib\n");
    for s in monitor.mem.samples() {
        writeln!(
            out,
            "{:.3},{},{},{}",
            s.t_s, s.total_kib, s.available_kib, s.watched_rss_kib
        )
        .unwrap();
    }
    out
}

/// The sampling-health CSV: one row for the node-level records plus one
/// per process, carrying the [`crate::health::HealthLedger`] tallies the
/// chaos harness reconciles against injected fault logs.
pub fn health_csv(monitor: &Monitor) -> String {
    let mut out = String::from(
        "scope,pid,ok,retried,degraded,dropped,quarantine_events,reprobes,backoff_us,\
         not_found,io,malformed,denied,supervisor_restarts\n",
    );
    let row = |out: &mut String,
               scope: &str,
               pid: Pid,
               l: &crate::health::HealthLedger,
               restarts: u64| {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            scope,
            pid,
            l.ok,
            l.retried,
            l.degraded,
            l.dropped,
            l.quarantine_events,
            l.reprobes,
            l.backoff_us,
            l.errors_of(SourceErrorKind::NotFound),
            l.errors_of(SourceErrorKind::Io),
            l.errors_of(SourceErrorKind::Malformed),
            l.errors_of(SourceErrorKind::Denied),
            restarts
        )
        .unwrap();
    };
    row(
        &mut out,
        "node",
        0,
        &monitor.node_health,
        monitor.supervisor.restarts,
    );
    for w in monitor.processes() {
        row(&mut out, "process", w.info.pid, &w.health.ledger, 0);
    }
    out
}

/// The overload-control CSV: one row per governor period change, so a
/// post-processing script can re-scale the time axis of the other series
/// across sampling-rate changes. The final row carries the watchdog's
/// overrun/shed totals.
pub fn overload_csv(monitor: &Monitor) -> String {
    let mut out = String::from("time,event,from_period_us,to_period_us,cost_us,budget_us\n");
    for c in &monitor.governor.changes {
        writeln!(
            out,
            "{:.3},period_change,{},{},{},{}",
            c.t_s, c.from_us, c.to_us, c.cost_us, c.budget_us
        )
        .unwrap();
    }
    writeln!(
        out,
        ",watchdog,{},{},,",
        monitor.governor.overruns, monitor.governor.shed_rounds
    )
    .unwrap();
    out
}

/// The full log-file content for one process: report + CSV sections, the
/// §3.6 layout.
pub fn log_content(monitor: &Monitor, pid: Pid, duration_s: f64, report: &str) -> String {
    log_content_with_comm(monitor, pid, duration_s, report, None)
}

/// Like [`log_content`], additionally appending the MPI point-to-point
/// matrix — "the log file also contains the MPI point-to-point data
/// collected between all ranks, which can be post-processed to produce a
/// heatmap" (§3.6).
pub fn log_content_with_comm(
    monitor: &Monitor,
    pid: Pid,
    duration_s: f64,
    report: &str,
    comm: Option<&zerosum_mpi::CommMatrix>,
) -> String {
    let mut out = String::new();
    out.push_str(report);
    out.push('\n');
    let _ = duration_s;
    if let Some(watch) = monitor.process(pid) {
        out.push_str("=== LWP time series (CSV) ===\n");
        out.push_str(&lwp_csv(watch));
        out.push_str("=== HWT time series (CSV) ===\n");
        out.push_str(&hwt_csv(monitor));
        out.push_str("=== Memory time series (CSV) ===\n");
        out.push_str(&memory_csv(monitor));
        out.push_str("=== Sampling health (CSV) ===\n");
        out.push_str(&health_csv(monitor));
        if !monitor.governor.changes.is_empty() || monitor.governor.overruns > 0 {
            out.push_str("=== Overload control (CSV) ===\n");
            out.push_str(&overload_csv(monitor));
        }
        if let Some(m) = comm {
            out.push_str("=== MPI point-to-point (CSV) ===\n");
            out.push_str(&zerosum_mpi::heatmap::to_csv(m));
        }
    }
    out
}

/// Writes per-process logs to `dir` as `zerosum.<rank-or-pid>.log`.
/// Returns the written paths.
pub fn write_logs(
    monitor: &Monitor,
    dir: &Path,
    duration_s: f64,
    mut report_for: impl FnMut(Pid) -> String,
) -> io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for w in monitor.processes() {
        let tag = w
            .info
            .rank
            .map(|r| format!("{r:05}"))
            .unwrap_or_else(|| w.info.pid.to_string());
        let path = dir.join(format!("zerosum.{tag}.log"));
        let mut content = log_content(monitor, w.info.pid, duration_s, &report_for(w.info.pid));
        content.push_str(LOG_END_MARKER);
        content.push('\n');
        atomic_write(&path, &content)?;
        paths.push(path);
    }
    Ok(paths)
}

/// The abnormal-exit flush (§3.1): writes whatever has been collected so
/// far for every process, atomically, with a `PARTIAL` header naming the
/// cause. A dying application leaves either no file or a complete one —
/// never a torn log. Returns the written paths.
pub fn write_partial_logs(
    monitor: &Monitor,
    dir: &Path,
    cause: &str,
    mut report_for: impl FnMut(Pid) -> String,
) -> io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for w in monitor.processes() {
        let tag = w
            .info
            .rank
            .map(|r| format!("{r:05}"))
            .unwrap_or_else(|| w.info.pid.to_string());
        let path = dir.join(format!("zerosum.{tag}.log"));
        let mut content = format!("{LOG_PARTIAL_MARKER}\ncause: {cause}\n\n");
        content.push_str(&log_content(
            monitor,
            w.info.pid,
            monitor.last_t_s,
            &report_for(w.info.pid),
        ));
        content.push_str(LOG_END_MARKER);
        content.push('\n');
        atomic_write(&path, &content)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZeroSumConfig;
    use crate::monitor::ProcessInfo;
    use crate::report;
    use zerosum_sched::{Behavior, NodeSim, SchedParams, SimProcSource};
    use zerosum_topology::{presets, CpuSet};

    fn monitored() -> (Monitor, Pid) {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "app",
            CpuSet::single(0),
            256,
            Behavior::FiniteCompute {
                remaining_us: 5_000_000,
                chunk_us: 10_000,
            },
        );
        let mut mon = Monitor::new(ZeroSumConfig::default());
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(0),
            hostname: "n".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        for i in 1..=3u64 {
            sim.run_for(1_000_000);
            mon.sample(i as f64, &SimProcSource::new(&sim));
        }
        (mon, pid)
    }

    #[test]
    fn lwp_csv_rows_per_sample() {
        let (mon, pid) = monitored();
        let csv = lwp_csv(mon.process(pid).unwrap());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "time,tid,type,state,utime,stime,minflt,majflt,nswap,processor,vcsw,nvcsw,wait_ns"
        );
        assert_eq!(lines.len(), 1 + 3); // header + 3 samples of 1 LWP
        assert!(lines[1].contains(",Main,"));
        assert!(lines[1].ends_with(",0,0") || lines[1].contains(",R,"));
    }

    #[test]
    fn hwt_csv_covers_all_cpus() {
        let (mon, _) = monitored();
        let csv = hwt_csv(&mon);
        // 8 CPUs × 2 delta samples + header.
        assert_eq!(csv.lines().count(), 1 + 8 * 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("2.000,0,"));
    }

    #[test]
    fn memory_csv_has_samples() {
        let (mon, _) = monitored();
        let csv = memory_csv(&mon);
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn comm_matrix_appended_when_provided() {
        let (mon, pid) = monitored();
        let mut m = zerosum_mpi::CommMatrix::new(4);
        m.record(0, 1, 1234);
        let rep = crate::report::render_process_report(&mon, pid, 3.0, None);
        let log = log_content_with_comm(&mon, pid, 3.0, &rep, Some(&m));
        assert!(log.contains("=== MPI point-to-point (CSV) ==="));
        assert!(log.contains("0,1,1234,1"));
        // Without a matrix the section is absent.
        let log = log_content(&mon, pid, 3.0, &rep);
        assert!(!log.contains("MPI point-to-point"));
    }

    #[test]
    fn logs_written_to_disk() {
        let (mon, pid) = monitored();
        let dir = std::env::temp_dir().join(format!("zs-logs-{}", std::process::id()));
        let paths = write_logs(&mon, &dir, 3.0, |p| {
            report::render_process_report(&mon, p, 3.0, None)
        })
        .unwrap();
        assert_eq!(paths.len(), 1);
        assert!(paths[0].ends_with("zerosum.00000.log"));
        let content = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(content.contains("Duration of execution"));
        assert!(content.contains("=== LWP time series (CSV) ==="));
        assert!(content.contains(&format!("LWP {pid}: Main")));
        assert!(content.ends_with(&format!("{LOG_END_MARKER}\n")));
        // No temp residue left behind by the atomic write.
        assert!(std::fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_replaces_existing_content() {
        let dir = std::env::temp_dir().join(format!("zs-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.log");
        atomic_write(&path, "first\n").unwrap();
        atomic_write(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        assert!(!path.with_file_name("out.log.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn health_csv_has_node_and_process_rows() {
        let (mon, pid) = monitored();
        let csv = health_csv(&mon);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("scope,pid,ok,retried,degraded,dropped"));
        assert!(lines[1].starts_with("node,0,"));
        assert!(lines[2].starts_with(&format!("process,{pid},3,0,0,0,")));
    }

    #[test]
    fn overload_section_only_when_governor_acted() {
        let (mut mon, pid) = monitored();
        let rep = report::render_process_report(&mon, pid, 3.0, None);
        let log = log_content(&mon, pid, 3.0, &rep);
        assert!(!log.contains("Overload control"), "healthy run is silent");
        mon.note_round_cost(2.0, 600_000);
        let log = log_content(&mon, pid, 3.0, &rep);
        assert!(log.contains("=== Overload control (CSV) ==="));
        assert!(log.contains("2.000,period_change,1000000,2000000,600000,10000"));
        assert!(log.contains(",watchdog,1,"));
    }

    #[test]
    fn partial_logs_are_marked_and_complete() {
        let (mon, _) = monitored();
        let dir = std::env::temp_dir().join(format!("zs-partial-{}", std::process::id()));
        let paths = write_partial_logs(&mon, &dir, "SIGSEGV", |p| {
            report::render_process_report(&mon, p, 3.0, None)
        })
        .unwrap();
        let content = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(content.starts_with(LOG_PARTIAL_MARKER));
        assert!(content.contains("cause: SIGSEGV"));
        assert!(content.contains("=== Sampling health (CSV) ==="));
        assert!(content.ends_with(&format!("{LOG_END_MARKER}\n")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
