//! Memory-subsystem monitoring (§3.5).
//!
//! ZeroSum watches `/proc/meminfo` together with per-process RSS from
//! `/proc/<pid>/status`, so that an out-of-memory event can be attributed
//! either to the monitored application or to something else on the node
//! (a noisy neighbour, a leaking system service).

use zerosum_proc::{MemInfo, Pid};
use zerosum_stats::Ring;

/// One memory observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemSample {
    /// Sample time, seconds.
    pub t_s: f64,
    /// Node total memory, KiB.
    pub total_kib: u64,
    /// Node available memory, KiB.
    pub available_kib: u64,
    /// Sum of monitored processes' RSS, KiB.
    pub watched_rss_kib: u64,
}

impl MemSample {
    /// Memory used by anything that is not a monitored process, KiB.
    pub fn other_usage_kib(&self) -> u64 {
        self.total_kib
            .saturating_sub(self.available_kib)
            .saturating_sub(self.watched_rss_kib)
    }
}

/// Who is responsible for memory pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPressureSource {
    /// No pressure: available memory above the warning threshold.
    None,
    /// The monitored application dominates usage.
    Application,
    /// Unmonitored consumers dominate usage — the "another system
    /// process is consuming large amounts of memory" case of §3.5.
    External,
}

/// Tracks node + per-process memory over time. The sample history is a
/// bounded ring (2:1 downsample on wrap); peaks and `min_available_kib`
/// summarize only what the ring retains, while `pressure()` always sees
/// the latest sample.
#[derive(Debug)]
pub struct MemoryTracker {
    samples: Ring<MemSample>,
    /// Peak RSS seen per watched process.
    peaks: Vec<(Pid, u64)>,
    /// Warn when available memory falls below this fraction of total.
    pub warn_available_frac: f64,
}

impl Default for MemoryTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryTracker {
    /// A tracker with the default 10% available-memory warning level.
    pub fn new() -> Self {
        Self::with_capacity(zerosum_stats::DEFAULT_SERIES_CAPACITY)
    }

    /// A tracker whose history holds at most `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        MemoryTracker {
            samples: Ring::with_capacity(capacity),
            peaks: Vec::new(),
            warn_available_frac: 0.10,
        }
    }

    /// Folds one observation.
    pub fn observe(&mut self, t_s: f64, meminfo: &MemInfo, watched: &[(Pid, u64)]) {
        let rss: u64 = watched.iter().map(|(_, r)| r).sum();
        self.samples.push(MemSample {
            t_s,
            total_kib: meminfo.mem_total_kib,
            available_kib: meminfo.mem_available_kib,
            watched_rss_kib: rss,
        });
        for &(pid, r) in watched {
            match self.peaks.iter_mut().find(|(p, _)| *p == pid) {
                Some((_, peak)) => *peak = (*peak).max(r),
                None => self.peaks.push((pid, r)),
            }
        }
    }

    /// The sample history.
    pub fn samples(&self) -> &[MemSample] {
        self.samples.as_slice()
    }

    /// Peak RSS of a watched process, KiB.
    pub fn peak_rss_kib(&self, pid: Pid) -> Option<u64> {
        self.peaks.iter().find(|(p, _)| *p == pid).map(|(_, r)| *r)
    }

    /// Diagnoses the current memory-pressure source.
    pub fn pressure(&self) -> MemPressureSource {
        let Some(last) = self.samples.last() else {
            return MemPressureSource::None;
        };
        let threshold = (last.total_kib as f64 * self.warn_available_frac) as u64;
        if last.available_kib >= threshold {
            return MemPressureSource::None;
        }
        if last.watched_rss_kib >= last.other_usage_kib() {
            MemPressureSource::Application
        } else {
            MemPressureSource::External
        }
    }

    /// Minimum available memory over the run, KiB.
    pub fn min_available_kib(&self) -> Option<u64> {
        self.samples.iter().map(|s| s.available_kib).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mi(total: u64, avail: u64) -> MemInfo {
        MemInfo {
            mem_total_kib: total,
            mem_available_kib: avail,
            mem_free_kib: avail,
            ..Default::default()
        }
    }

    #[test]
    fn no_pressure_when_plenty_available() {
        let mut tr = MemoryTracker::new();
        tr.observe(0.0, &mi(1000, 800), &[(1, 100)]);
        assert_eq!(tr.pressure(), MemPressureSource::None);
    }

    #[test]
    fn application_pressure_attribution() {
        let mut tr = MemoryTracker::new();
        // 5% available, app holds most of the used memory.
        tr.observe(0.0, &mi(1000, 50), &[(1, 800)]);
        assert_eq!(tr.pressure(), MemPressureSource::Application);
    }

    #[test]
    fn external_pressure_attribution() {
        let mut tr = MemoryTracker::new();
        // 5% available but the app only uses 100 of the 950 used.
        tr.observe(0.0, &mi(1000, 50), &[(1, 100)]);
        assert_eq!(tr.pressure(), MemPressureSource::External);
        assert_eq!(tr.samples()[0].other_usage_kib(), 850);
    }

    #[test]
    fn peaks_and_min_available() {
        let mut tr = MemoryTracker::new();
        tr.observe(0.0, &mi(1000, 900), &[(1, 50), (2, 10)]);
        tr.observe(1.0, &mi(1000, 700), &[(1, 250), (2, 5)]);
        tr.observe(2.0, &mi(1000, 800), &[(1, 150), (2, 8)]);
        assert_eq!(tr.peak_rss_kib(1), Some(250));
        assert_eq!(tr.peak_rss_kib(2), Some(10));
        assert_eq!(tr.peak_rss_kib(3), None);
        assert_eq!(tr.min_available_kib(), Some(700));
    }

    #[test]
    fn history_is_bounded_but_pressure_sees_latest() {
        let mut tr = MemoryTracker::with_capacity(8);
        for t in 0..1_000u64 {
            tr.observe(t as f64, &mi(1000, 900), &[(1, t)]);
        }
        // Final sample drops available below the 10% threshold with the
        // app holding the used memory.
        tr.observe(1000.0, &mi(1000, 50), &[(1, 900)]);
        assert!(tr.samples().len() <= 8);
        assert_eq!(tr.pressure(), MemPressureSource::Application);
        assert_eq!(tr.peak_rss_kib(1), Some(999), "peaks fold every sample");
        assert!(
            (tr.samples()[0].t_s - 0.0).abs() < 1e-9,
            "first sample kept"
        );
    }

    #[test]
    fn empty_tracker() {
        let tr = MemoryTracker::new();
        assert_eq!(tr.pressure(), MemPressureSource::None);
        assert_eq!(tr.min_available_kib(), None);
    }
}
