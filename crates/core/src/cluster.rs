//! Allocation-wide aggregation.
//!
//! §2 of the paper: "The htop view … represents a subset of what a user
//! would like to see, but for all nodes in a given allocation, and for
//! all resources at their disposal"; §5 positions ZeroSum as the
//! single-node agent whose per-rank data is aggregated across the
//! allocation. [`ClusterMonitor`] is that aggregation: it owns one
//! [`Monitor`] per node and renders the allocation summary a user reads
//! first — per-node utilization, contention totals, stragglers — before
//! drilling into a rank's full report.
//!
//! At allocation scale nodes fail: they get rebooted mid-job, straggle
//! through OS jitter storms, or drop off the fabric and rejoin minutes
//! later. The supervision layer tracks a per-node heartbeat deadline in
//! units of monitoring rounds — miss one and the node turns *suspect*,
//! keep missing and it is declared *dead* — with exponential-backoff
//! re-probing of dead nodes so a 1000-node allocation does not hammer a
//! crashed host every round. Aggregates are then computed over the
//! quorum (every node not known dead), and the summary renders an
//! explicit `DEGRADED (k/n nodes)` marker instead of silently shrinking
//! the denominator.

use crate::contention;
use crate::monitor::Monitor;
use std::fmt::Write as _;

/// Supervision state of one node, driven by heartbeat rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Heartbeating normally.
    Alive,
    /// Missed at least `suspect_after` consecutive rounds — data from
    /// this node is stale but it is still in the quorum.
    Suspect,
    /// Missed `dead_after` consecutive rounds — excluded from quorum
    /// aggregates until a re-probe hears from it again.
    Dead,
}

/// Heartbeat-deadline knobs for node supervision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisionConfig {
    /// Consecutive missed rounds before `Alive` → `Suspect`.
    pub suspect_after: u32,
    /// Consecutive missed rounds before → `Dead`.
    pub dead_after: u32,
    /// Initial re-probe interval for dead nodes, in rounds; doubles on
    /// every failed probe (exponential backoff).
    pub reprobe_interval: u32,
    /// Backoff ceiling for the re-probe interval, rounds.
    pub max_reprobe_interval: u32,
    /// Clock-skew tolerance: a heartbeat whose reported sample time
    /// deviates from the expected round time by more than this many
    /// seconds flags the node as skewed (the node stays alive; its time
    /// axis cannot be trusted in cross-node comparisons).
    pub skew_tolerance_s: f64,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            suspect_after: 1,
            dead_after: 3,
            reprobe_interval: 2,
            max_reprobe_interval: 16,
            skew_tolerance_s: 0.1,
        }
    }
}

/// Per-node supervision record.
#[derive(Debug, Clone)]
pub struct NodeSupervision {
    /// Current state.
    pub state: NodeState,
    /// Consecutive rounds without a heartbeat.
    pub missed: u32,
    /// State transitions `(round, new_state)`, in order. Bounded in
    /// practice by the number of node faults, not by run length.
    pub transitions: Vec<(u64, NodeState)>,
    /// Times this node was declared dead.
    pub deaths: u32,
    /// Times a dead node heartbeated again (delayed rejoin).
    pub rejoins: u32,
    /// True if any heartbeat exceeded the clock-skew tolerance.
    pub skewed: bool,
    /// Largest observed |reported − expected| sample-time gap, seconds.
    pub max_skew_s: f64,
    /// Heartbeat received in the current round.
    heard: bool,
    /// Next round a dead node will be probed.
    next_probe_round: u64,
    /// Current re-probe interval, rounds (doubles per failed probe).
    probe_interval: u32,
}

impl NodeSupervision {
    fn new() -> Self {
        NodeSupervision {
            state: NodeState::Alive,
            missed: 0,
            transitions: Vec::new(),
            deaths: 0,
            rejoins: 0,
            skewed: false,
            max_skew_s: 0.0,
            heard: false,
            next_probe_round: 0,
            probe_interval: 0,
        }
    }
}

/// Aggregated view over one node's monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAggregate {
    /// Node hostname.
    pub hostname: String,
    /// Ranks monitored on this node.
    pub ranks: usize,
    /// Live + exited LWPs observed.
    pub lwps: usize,
    /// Mean user% across the allocation's hardware threads on this node.
    pub mean_user_pct: f64,
    /// Mean idle%.
    pub mean_idle_pct: f64,
    /// Total non-voluntary context switches across all ranks.
    pub total_nvcsw: u64,
    /// Peak RSS sum across ranks, KiB.
    pub rss_kib: u64,
}

impl NodeAggregate {
    /// Computes one node's aggregate from its monitor. The wire
    /// collector uses this node-side (the agent aggregates locally and
    /// ships the result), so a streamed aggregate is bit-identical to
    /// the one [`ClusterMonitor::aggregates`] would compute in-process.
    pub fn from_monitor(hostname: &str, m: &Monitor) -> NodeAggregate {
        let mut user = 0.0;
        let mut idle = 0.0;
        let mut n = 0usize;
        for cpu in m.watched_cpuset().iter() {
            if let Some((i, _s, u)) = m.hwt.overall(cpu) {
                user += u;
                idle += i;
                n += 1;
            }
        }
        let lwps = m.processes().iter().map(|w| w.lwps.len()).sum();
        let total_nvcsw = m
            .processes()
            .iter()
            .flat_map(|w| w.lwps.tracks())
            .map(|t| t.total_nvcsw())
            .sum();
        let rss_kib = m
            .processes()
            .iter()
            .filter_map(|w| m.mem.peak_rss_kib(w.info.pid))
            .sum();
        NodeAggregate {
            hostname: hostname.to_string(),
            ranks: m.processes().len(),
            lwps,
            mean_user_pct: if n > 0 { user / n as f64 } else { 0.0 },
            mean_idle_pct: if n > 0 { idle / n as f64 } else { 0.0 },
            total_nvcsw,
            rss_kib,
        }
    }
}

/// The allocation-wide monitor: one [`Monitor`] per node.
#[derive(Debug, Default)]
pub struct ClusterMonitor {
    nodes: Vec<(String, Monitor)>,
    /// Supervision records, keyed by hostname. Created by
    /// [`ClusterMonitor::register_node`] (before any monitor is shipped)
    /// or implicitly by [`ClusterMonitor::add_node`].
    sup: Vec<(String, NodeSupervision)>,
    /// Heartbeat-deadline knobs.
    pub supervision: SupervisionConfig,
    /// Completed supervision rounds.
    round: u64,
}

impl ClusterMonitor {
    /// An empty cluster view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node for supervision before its monitor has reported
    /// (supervision runs *during* the job; monitors are shipped at the
    /// end). Idempotent.
    pub fn register_node(&mut self, hostname: impl Into<String>) {
        let hostname = hostname.into();
        if !self.sup.iter().any(|(h, _)| *h == hostname) {
            self.sup.push((hostname, NodeSupervision::new()));
        }
    }

    /// Adds a node's monitor (typically shipped from that node's ZeroSum
    /// agent at the end of the run, or streamed via the §3.6 feed).
    pub fn add_node(&mut self, hostname: impl Into<String>, monitor: Monitor) {
        let hostname = hostname.into();
        self.register_node(hostname.clone());
        self.nodes.push((hostname, monitor));
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have reported.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access the per-node monitors.
    pub fn nodes(&self) -> impl Iterator<Item = (&str, &Monitor)> {
        self.nodes.iter().map(|(h, m)| (h.as_str(), m))
    }

    /// Mutable access to one node's monitor — the allocation-scale chaos
    /// driver samples in place while supervising the same cluster view.
    pub fn node_mut(&mut self, hostname: &str) -> Option<&mut Monitor> {
        self.nodes
            .iter_mut()
            .find(|(h, _)| h == hostname)
            .map(|(_, m)| m)
    }

    /// Starts a supervision round. Call once per sampling period, then
    /// deliver [`ClusterMonitor::heartbeat`]s as nodes report, and close
    /// with [`ClusterMonitor::end_round`].
    pub fn begin_round(&mut self) {
        self.round += 1;
    }

    /// The current supervision round (0 before the first
    /// [`ClusterMonitor::begin_round`]).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Records a heartbeat from `hostname` in the current round.
    pub fn heartbeat(&mut self, hostname: &str) {
        if let Some((_, s)) = self.sup.iter_mut().find(|(h, _)| h == hostname) {
            s.heard = true;
        }
    }

    /// Records a heartbeat carrying the node's reported sample time.
    /// A deviation from `expected_t_s` beyond the skew tolerance flags
    /// the node's clock as skewed without affecting liveness.
    pub fn heartbeat_at(&mut self, hostname: &str, reported_t_s: f64, expected_t_s: f64) {
        let tol = self.supervision.skew_tolerance_s;
        if let Some((_, s)) = self.sup.iter_mut().find(|(h, _)| h == hostname) {
            s.heard = true;
            let dev = (reported_t_s - expected_t_s).abs();
            if dev > tol {
                s.skewed = true;
            }
            if dev > s.max_skew_s {
                s.max_skew_s = dev;
            }
        }
    }

    /// True if the caller should attempt to contact `hostname` this
    /// round. Alive and suspect nodes are always contacted; dead nodes
    /// only on their exponential-backoff re-probe schedule.
    pub fn should_probe(&self, hostname: &str) -> bool {
        match self.sup.iter().find(|(h, _)| h == hostname) {
            Some((_, s)) if s.state == NodeState::Dead => self.round >= s.next_probe_round,
            Some(_) => true,
            None => true,
        }
    }

    /// Closes the current round: applies heartbeat deadlines, advancing
    /// missed-deadline nodes through `Alive → Suspect → Dead`, doubling
    /// the re-probe backoff of dead nodes that stayed silent, and
    /// reviving any node heard from this round.
    pub fn end_round(&mut self) {
        let cfg = self.supervision;
        let round = self.round;
        for (_, s) in &mut self.sup {
            if std::mem::take(&mut s.heard) {
                s.missed = 0;
                if s.state != NodeState::Alive {
                    if s.state == NodeState::Dead {
                        s.rejoins += 1;
                    }
                    s.state = NodeState::Alive;
                    s.probe_interval = 0;
                    s.transitions.push((round, NodeState::Alive));
                }
                continue;
            }
            s.missed += 1;
            match s.state {
                NodeState::Dead => {
                    // This was a (failed) probe round: back off further.
                    if round >= s.next_probe_round {
                        s.probe_interval =
                            (s.probe_interval * 2).min(cfg.max_reprobe_interval).max(1);
                        s.next_probe_round = round + s.probe_interval as u64;
                    }
                }
                _ => {
                    if s.missed >= cfg.dead_after {
                        s.state = NodeState::Dead;
                        s.deaths += 1;
                        s.probe_interval = cfg.reprobe_interval.max(1);
                        s.next_probe_round = round + s.probe_interval as u64;
                        s.transitions.push((round, NodeState::Dead));
                    } else if s.missed >= cfg.suspect_after && s.state == NodeState::Alive {
                        s.state = NodeState::Suspect;
                        s.transitions.push((round, NodeState::Suspect));
                    }
                }
            }
        }
    }

    /// The supervision record of a node.
    pub fn supervision_of(&self, hostname: &str) -> Option<&NodeSupervision> {
        self.sup.iter().find(|(h, _)| h == hostname).map(|(_, s)| s)
    }

    /// The supervision state of a node. Nodes never registered are
    /// reported alive (supervision is opt-in).
    pub fn node_state(&self, hostname: &str) -> NodeState {
        self.supervision_of(hostname)
            .map(|s| s.state)
            .unwrap_or(NodeState::Alive)
    }

    /// `(quorum, total)`: nodes not known dead over all supervised (or
    /// reported) nodes. `quorum < total` means the allocation view is
    /// degraded.
    pub fn quorum(&self) -> (usize, usize) {
        if self.sup.is_empty() {
            return (self.nodes.len(), self.nodes.len());
        }
        let total = self.sup.len();
        let dead = self
            .sup
            .iter()
            .filter(|(_, s)| s.state == NodeState::Dead)
            .count();
        (total - dead, total)
    }

    /// Per-node aggregates restricted to the quorum (nodes not known
    /// dead) — what the allocation summary tabulates while degraded.
    pub fn quorum_aggregates(&self) -> Vec<NodeAggregate> {
        self.aggregates()
            .into_iter()
            .filter(|a| self.node_state(&a.hostname) != NodeState::Dead)
            .collect()
    }

    /// Computes the per-node aggregates.
    pub fn aggregates(&self) -> Vec<NodeAggregate> {
        self.nodes
            .iter()
            .map(|(hostname, m)| NodeAggregate::from_monitor(hostname, m))
            .collect()
    }

    /// The straggler node: lowest mean user% among the quorum (the node
    /// to investigate first when the allocation underperforms).
    pub fn straggler(&self) -> Option<NodeAggregate> {
        self.quorum_aggregates()
            .into_iter()
            .min_by(|a, b| a.mean_user_pct.partial_cmp(&b.mean_user_pct).unwrap())
    }

    /// Renders only the supervision markers: the `DEGRADED (k/n nodes)`
    /// line when the quorum is short, plus one DEAD / SUSPECT / SKEWED
    /// line per affected node. Empty when every supervised node is
    /// healthy. The wire collector appends this to its own table so a
    /// streamed summary degrades exactly like the in-process one.
    pub fn render_markers(&self) -> String {
        let mut out = String::new();
        let (k, n) = self.quorum();
        if k < n {
            writeln!(
                out,
                "DEGRADED ({k}/{n} nodes): aggregates cover the quorum only"
            )
            .unwrap();
        }
        for (host, s) in &self.sup {
            match s.state {
                NodeState::Dead => writeln!(
                    out,
                    "DEAD: node {host} (missed {} round(s), deaths {}, rejoins {})",
                    s.missed, s.deaths, s.rejoins
                )
                .unwrap(),
                NodeState::Suspect => {
                    writeln!(out, "SUSPECT: node {host} (missed {} round(s))", s.missed).unwrap()
                }
                NodeState::Alive => {}
            }
            if s.skewed {
                writeln!(
                    out,
                    "SKEWED: node {host} (clock offset up to {:.3}s)",
                    s.max_skew_s
                )
                .unwrap();
            }
        }
        out
    }

    /// Renders the allocation summary table over the quorum, with an
    /// explicit `DEGRADED (k/n nodes)` marker and per-node supervision
    /// detail whenever any node is dead, suspect, or clock-skewed.
    pub fn render_summary(&self) -> String {
        if self.nodes.is_empty() {
            return "ZeroSum: no nodes reported\n".to_string();
        }
        let aggs = self.quorum_aggregates();
        let mut out = String::from("Allocation Summary:\n");
        writeln!(
            out,
            "{:<16} {:>5} {:>5} {:>8} {:>8} {:>12} {:>10}",
            "node", "ranks", "LWPs", "user%", "idle%", "nv_ctx", "RSS(GiB)"
        )
        .unwrap();
        for a in &aggs {
            writeln!(
                out,
                "{:<16} {:>5} {:>5} {:>8.2} {:>8.2} {:>12} {:>10.2}",
                a.hostname,
                a.ranks,
                a.lwps,
                a.mean_user_pct,
                a.mean_idle_pct,
                a.total_nvcsw,
                a.rss_kib as f64 / (1024.0 * 1024.0)
            )
            .unwrap();
        }
        let ranks: usize = aggs.iter().map(|a| a.ranks).sum();
        let nvcsw: u64 = aggs.iter().map(|a| a.total_nvcsw).sum();
        let user = aggs.iter().map(|a| a.mean_user_pct).sum::<f64>() / aggs.len() as f64;
        writeln!(
            out,
            "TOTAL: {} node(s), {} rank(s), mean user {:.2}%, nv_ctx {}",
            aggs.len(),
            ranks,
            user,
            nvcsw
        )
        .unwrap();
        out.push_str(&self.render_markers());
        // Contention hot spots: quorum nodes with any over-subscribed
        // process.
        for (hostname, m) in &self.nodes {
            if self.node_state(hostname) == NodeState::Dead {
                continue;
            }
            for w in m.processes() {
                if let Some(rep) = contention::analyze(m, w.info.pid) {
                    if rep.oversubscription > 1.0 {
                        writeln!(
                            out,
                            "HOT: node {hostname} rank {:?} over-subscribed ({:.1} busy LWPs/HWT)",
                            w.info.rank, rep.oversubscription
                        )
                        .unwrap();
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZeroSumConfig;
    use crate::monitor::ProcessInfo;
    use crate::runner::{attach_monitor_threads, run_monitored};
    use zerosum_sched::{Behavior, NodeSim, SchedParams};
    use zerosum_topology::{presets, CpuSet};

    fn node_monitor(hostname: &str, oversubscribed: bool, seed: u64) -> Monitor {
        let mut sim = NodeSim::new(
            presets::laptop_i7_1165g7(),
            SchedParams {
                seed,
                ..Default::default()
            },
        );
        sim.set_hostname(hostname);
        let mask = if oversubscribed {
            CpuSet::single(0)
        } else {
            CpuSet::from_indices([0u32, 1])
        };
        let pid = sim.spawn_process(
            "app",
            mask.clone(),
            1_024,
            Behavior::FiniteCompute {
                remaining_us: 2_000_000,
                chunk_us: 10_000,
            },
        );
        sim.spawn_task(
            pid,
            "OpenMP",
            None,
            Behavior::FiniteCompute {
                remaining_us: 2_000_000,
                chunk_us: 10_000,
            },
            false,
        );
        let mut mon = Monitor::new(ZeroSumConfig::scaled(10));
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(0),
            hostname: hostname.into(),
            gpus: vec![],
            cpus_allowed: mask,
        });
        attach_monitor_threads(&mut sim, &mon);
        run_monitored(&mut sim, &mut mon, None, 60_000_000);
        mon
    }

    #[test]
    fn aggregates_across_nodes() {
        let mut cluster = ClusterMonitor::new();
        cluster.add_node("node01", node_monitor("node01", false, 1));
        cluster.add_node("node02", node_monitor("node02", true, 2));
        assert_eq!(cluster.len(), 2);
        let aggs = cluster.aggregates();
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].ranks, 1);
        assert!(aggs[0].lwps >= 2);
        // Healthy node: both CPUs busy → high mean user%.
        assert!(aggs[0].mean_user_pct > 60.0, "{aggs:?}");
        // Oversubscribed node piles up context switches.
        assert!(aggs[1].total_nvcsw > aggs[0].total_nvcsw);
    }

    #[test]
    fn summary_table_and_hot_spots() {
        let mut cluster = ClusterMonitor::new();
        cluster.add_node("node01", node_monitor("node01", false, 3));
        cluster.add_node("node02", node_monitor("node02", true, 4));
        let text = cluster.render_summary();
        assert!(text.contains("Allocation Summary:"));
        assert!(text.contains("node01"));
        assert!(text.contains("TOTAL: 2 node(s), 2 rank(s)"));
        assert!(text.contains("HOT: node node02"), "{text}");
        assert!(!text.contains("HOT: node node01"));
    }

    #[test]
    fn straggler_is_the_oversubscribed_node() {
        let mut cluster = ClusterMonitor::new();
        cluster.add_node("good", node_monitor("good", false, 5));
        cluster.add_node("bad", node_monitor("bad", true, 6));
        // The oversubscribed node's single HWT is 100% busy but its
        // *allocation-wide* user is per-HWT of the watched set; the
        // straggler metric identifies the lowest mean user%. With mask
        // width 1 fully busy it may not be lowest — assert the API works
        // and returns one of the nodes.
        let s = cluster.straggler().unwrap();
        assert!(s.hostname == "good" || s.hostname == "bad");
    }

    /// Drives one supervision round where only `alive` heartbeats.
    fn silent_round(c: &mut ClusterMonitor, alive: &[&str]) {
        c.begin_round();
        for h in alive {
            c.heartbeat(h);
        }
        c.end_round();
    }

    #[test]
    fn missed_deadlines_walk_alive_suspect_dead() {
        let mut c = ClusterMonitor::new();
        c.register_node("a");
        c.register_node("b");
        assert_eq!(c.quorum(), (2, 2));
        // Round 1: b misses its first deadline -> Suspect.
        silent_round(&mut c, &["a"]);
        assert_eq!(c.node_state("a"), NodeState::Alive);
        assert_eq!(c.node_state("b"), NodeState::Suspect);
        assert_eq!(c.quorum(), (2, 2), "suspect stays in the quorum");
        // Round 3: third consecutive miss -> Dead.
        silent_round(&mut c, &["a"]);
        assert_eq!(c.node_state("b"), NodeState::Suspect);
        silent_round(&mut c, &["a"]);
        assert_eq!(c.node_state("b"), NodeState::Dead);
        assert_eq!(c.quorum(), (1, 2));
        let s = c.supervision_of("b").unwrap();
        assert_eq!(s.deaths, 1);
        assert_eq!(
            s.transitions,
            vec![(1, NodeState::Suspect), (3, NodeState::Dead)]
        );
        // Unregistered nodes are reported alive (supervision is opt-in).
        assert_eq!(c.node_state("zz"), NodeState::Alive);
    }

    #[test]
    fn dead_node_reprobes_with_exponential_backoff() {
        let mut c = ClusterMonitor::new();
        c.register_node("a");
        c.register_node("b");
        let mut probe_rounds = Vec::new();
        for round in 1..=50u64 {
            c.begin_round();
            c.heartbeat("a");
            if c.node_state("b") == NodeState::Dead && c.should_probe("b") {
                probe_rounds.push(round);
            }
            c.end_round();
        }
        // Dead at end of round 3; probes at 3+2, then doubling gaps
        // capped at 16 rounds.
        assert_eq!(probe_rounds, vec![5, 9, 17, 33, 49]);
        assert_eq!(c.supervision_of("b").unwrap().missed, 50);
    }

    #[test]
    fn delayed_rejoin_revives_node_without_double_counting() {
        let mut c = ClusterMonitor::new();
        c.register_node("a");
        c.register_node("b");
        // b silent through round 5 (dead at 3, failed probe at 5), then
        // answers its next probe at round 9.
        for round in 1..=9u64 {
            c.begin_round();
            c.heartbeat("a");
            if round >= 6 && c.should_probe("b") {
                c.heartbeat("b");
            }
            c.end_round();
        }
        assert_eq!(c.node_state("b"), NodeState::Alive);
        assert_eq!(c.quorum(), (2, 2));
        let s = c.supervision_of("b").unwrap();
        assert_eq!((s.deaths, s.rejoins), (1, 1), "one death, one rejoin");
        assert_eq!(s.missed, 0);
        assert_eq!(s.transitions.last(), Some(&(9, NodeState::Alive)));
        // A second death after the rejoin counts separately.
        for _ in 0..3 {
            silent_round(&mut c, &["a"]);
        }
        assert_eq!(c.supervision_of("b").unwrap().deaths, 2);
    }

    #[test]
    fn skewed_clock_flags_node_but_keeps_it_alive() {
        let mut c = ClusterMonitor::new();
        c.register_node("a");
        c.begin_round();
        c.heartbeat_at("a", 1.5, 1.0);
        c.end_round();
        assert_eq!(c.node_state("a"), NodeState::Alive);
        let s = c.supervision_of("a").unwrap();
        assert!(s.skewed);
        assert!((s.max_skew_s - 0.5).abs() < 1e-9);
        // Within tolerance: no flag.
        let mut c2 = ClusterMonitor::new();
        c2.register_node("a");
        c2.begin_round();
        c2.heartbeat_at("a", 1.05, 1.0);
        c2.end_round();
        assert!(!c2.supervision_of("a").unwrap().skewed);
    }

    #[test]
    fn summary_renders_degraded_marker_over_quorum() {
        let mut cluster = ClusterMonitor::new();
        cluster.add_node("node01", node_monitor("node01", false, 7));
        cluster.add_node("node02", node_monitor("node02", false, 8));
        // node02 stops heartbeating and is declared dead.
        for _ in 0..3 {
            silent_round(&mut cluster, &["node01"]);
        }
        let text = cluster.render_summary();
        assert!(text.contains("DEGRADED (1/2 nodes)"), "{text}");
        assert!(text.contains("DEAD: node node02"), "{text}");
        assert!(text.contains("TOTAL: 1 node(s), 1 rank(s)"), "{text}");
        // The quorum table and straggler skip the dead node.
        assert_eq!(cluster.quorum_aggregates().len(), 1);
        assert_eq!(cluster.straggler().unwrap().hostname, "node01");
        // A rejoin clears the marker.
        silent_round(&mut cluster, &["node01", "node02"]);
        let text = cluster.render_summary();
        assert!(!text.contains("DEGRADED"), "{text}");
        assert!(text.contains("TOTAL: 2 node(s), 2 rank(s)"), "{text}");
    }

    #[test]
    fn empty_cluster_renders_gracefully() {
        let c = ClusterMonitor::new();
        assert!(c.is_empty());
        assert!(c.render_summary().contains("no nodes reported"));
        assert!(c.straggler().is_none());
    }
}
