//! Allocation-wide aggregation.
//!
//! §2 of the paper: "The htop view … represents a subset of what a user
//! would like to see, but for all nodes in a given allocation, and for
//! all resources at their disposal"; §5 positions ZeroSum as the
//! single-node agent whose per-rank data is aggregated across the
//! allocation. [`ClusterMonitor`] is that aggregation: it owns one
//! [`Monitor`] per node and renders the allocation summary a user reads
//! first — per-node utilization, contention totals, stragglers — before
//! drilling into a rank's full report.

use crate::contention;
use crate::monitor::Monitor;
use std::fmt::Write as _;

/// Aggregated view over one node's monitor.
#[derive(Debug, Clone)]
pub struct NodeAggregate {
    /// Node hostname.
    pub hostname: String,
    /// Ranks monitored on this node.
    pub ranks: usize,
    /// Live + exited LWPs observed.
    pub lwps: usize,
    /// Mean user% across the allocation's hardware threads on this node.
    pub mean_user_pct: f64,
    /// Mean idle%.
    pub mean_idle_pct: f64,
    /// Total non-voluntary context switches across all ranks.
    pub total_nvcsw: u64,
    /// Peak RSS sum across ranks, KiB.
    pub rss_kib: u64,
}

/// The allocation-wide monitor: one [`Monitor`] per node.
#[derive(Debug, Default)]
pub struct ClusterMonitor {
    nodes: Vec<(String, Monitor)>,
}

impl ClusterMonitor {
    /// An empty cluster view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node's monitor (typically shipped from that node's ZeroSum
    /// agent at the end of the run, or streamed via the §3.6 feed).
    pub fn add_node(&mut self, hostname: impl Into<String>, monitor: Monitor) {
        self.nodes.push((hostname.into(), monitor));
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have reported.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access the per-node monitors.
    pub fn nodes(&self) -> impl Iterator<Item = (&str, &Monitor)> {
        self.nodes.iter().map(|(h, m)| (h.as_str(), m))
    }

    /// Computes the per-node aggregates.
    pub fn aggregates(&self) -> Vec<NodeAggregate> {
        self.nodes
            .iter()
            .map(|(hostname, m)| {
                let mut user = 0.0;
                let mut idle = 0.0;
                let mut n = 0usize;
                for cpu in m.watched_cpuset().iter() {
                    if let Some((i, _s, u)) = m.hwt.overall(cpu) {
                        user += u;
                        idle += i;
                        n += 1;
                    }
                }
                let lwps = m.processes().iter().map(|w| w.lwps.len()).sum();
                let total_nvcsw = m
                    .processes()
                    .iter()
                    .flat_map(|w| w.lwps.tracks())
                    .map(|t| t.total_nvcsw())
                    .sum();
                let rss_kib = m
                    .processes()
                    .iter()
                    .filter_map(|w| m.mem.peak_rss_kib(w.info.pid))
                    .sum();
                NodeAggregate {
                    hostname: hostname.clone(),
                    ranks: m.processes().len(),
                    lwps,
                    mean_user_pct: if n > 0 { user / n as f64 } else { 0.0 },
                    mean_idle_pct: if n > 0 { idle / n as f64 } else { 0.0 },
                    total_nvcsw,
                    rss_kib,
                }
            })
            .collect()
    }

    /// The straggler node: lowest mean user% (the node to investigate
    /// first when the allocation underperforms).
    pub fn straggler(&self) -> Option<NodeAggregate> {
        self.aggregates()
            .into_iter()
            .min_by(|a, b| a.mean_user_pct.partial_cmp(&b.mean_user_pct).unwrap())
    }

    /// Renders the allocation summary table.
    pub fn render_summary(&self) -> String {
        if self.nodes.is_empty() {
            return "ZeroSum: no nodes reported\n".to_string();
        }
        let aggs = self.aggregates();
        let mut out = String::from("Allocation Summary:\n");
        writeln!(
            out,
            "{:<16} {:>5} {:>5} {:>8} {:>8} {:>12} {:>10}",
            "node", "ranks", "LWPs", "user%", "idle%", "nv_ctx", "RSS(GiB)"
        )
        .unwrap();
        for a in &aggs {
            writeln!(
                out,
                "{:<16} {:>5} {:>5} {:>8.2} {:>8.2} {:>12} {:>10.2}",
                a.hostname,
                a.ranks,
                a.lwps,
                a.mean_user_pct,
                a.mean_idle_pct,
                a.total_nvcsw,
                a.rss_kib as f64 / (1024.0 * 1024.0)
            )
            .unwrap();
        }
        let ranks: usize = aggs.iter().map(|a| a.ranks).sum();
        let nvcsw: u64 = aggs.iter().map(|a| a.total_nvcsw).sum();
        let user = aggs.iter().map(|a| a.mean_user_pct).sum::<f64>() / aggs.len() as f64;
        writeln!(
            out,
            "TOTAL: {} node(s), {} rank(s), mean user {:.2}%, nv_ctx {}",
            aggs.len(),
            ranks,
            user,
            nvcsw
        )
        .unwrap();
        // Contention hot spots: nodes with any over-subscribed process.
        for (hostname, m) in &self.nodes {
            for w in m.processes() {
                if let Some(rep) = contention::analyze(m, w.info.pid) {
                    if rep.oversubscription > 1.0 {
                        writeln!(
                            out,
                            "HOT: node {hostname} rank {:?} over-subscribed ({:.1} busy LWPs/HWT)",
                            w.info.rank, rep.oversubscription
                        )
                        .unwrap();
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZeroSumConfig;
    use crate::monitor::ProcessInfo;
    use crate::runner::{attach_monitor_threads, run_monitored};
    use zerosum_sched::{Behavior, NodeSim, SchedParams};
    use zerosum_topology::{presets, CpuSet};

    fn node_monitor(hostname: &str, oversubscribed: bool, seed: u64) -> Monitor {
        let mut sim = NodeSim::new(
            presets::laptop_i7_1165g7(),
            SchedParams {
                seed,
                ..Default::default()
            },
        );
        sim.set_hostname(hostname);
        let mask = if oversubscribed {
            CpuSet::single(0)
        } else {
            CpuSet::from_indices([0u32, 1])
        };
        let pid = sim.spawn_process(
            "app",
            mask.clone(),
            1_024,
            Behavior::FiniteCompute {
                remaining_us: 2_000_000,
                chunk_us: 10_000,
            },
        );
        sim.spawn_task(
            pid,
            "OpenMP",
            None,
            Behavior::FiniteCompute {
                remaining_us: 2_000_000,
                chunk_us: 10_000,
            },
            false,
        );
        let mut mon = Monitor::new(ZeroSumConfig::scaled(10));
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(0),
            hostname: hostname.into(),
            gpus: vec![],
            cpus_allowed: mask,
        });
        attach_monitor_threads(&mut sim, &mon);
        run_monitored(&mut sim, &mut mon, None, 60_000_000);
        mon
    }

    #[test]
    fn aggregates_across_nodes() {
        let mut cluster = ClusterMonitor::new();
        cluster.add_node("node01", node_monitor("node01", false, 1));
        cluster.add_node("node02", node_monitor("node02", true, 2));
        assert_eq!(cluster.len(), 2);
        let aggs = cluster.aggregates();
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].ranks, 1);
        assert!(aggs[0].lwps >= 2);
        // Healthy node: both CPUs busy → high mean user%.
        assert!(aggs[0].mean_user_pct > 60.0, "{aggs:?}");
        // Oversubscribed node piles up context switches.
        assert!(aggs[1].total_nvcsw > aggs[0].total_nvcsw);
    }

    #[test]
    fn summary_table_and_hot_spots() {
        let mut cluster = ClusterMonitor::new();
        cluster.add_node("node01", node_monitor("node01", false, 3));
        cluster.add_node("node02", node_monitor("node02", true, 4));
        let text = cluster.render_summary();
        assert!(text.contains("Allocation Summary:"));
        assert!(text.contains("node01"));
        assert!(text.contains("TOTAL: 2 node(s), 2 rank(s)"));
        assert!(text.contains("HOT: node node02"), "{text}");
        assert!(!text.contains("HOT: node node01"));
    }

    #[test]
    fn straggler_is_the_oversubscribed_node() {
        let mut cluster = ClusterMonitor::new();
        cluster.add_node("good", node_monitor("good", false, 5));
        cluster.add_node("bad", node_monitor("bad", true, 6));
        // The oversubscribed node's single HWT is 100% busy but its
        // *allocation-wide* user is per-HWT of the watched set; the
        // straggler metric identifies the lowest mean user%. With mask
        // width 1 fully busy it may not be lowest — assert the API works
        // and returns one of the nodes.
        let s = cluster.straggler().unwrap();
        assert!(s.hostname == "good" || s.hostname == "bad");
    }

    #[test]
    fn empty_cluster_renders_gracefully() {
        let c = ClusterMonitor::new();
        assert!(c.is_empty());
        assert!(c.render_summary().contains("no nodes reported"));
        assert!(c.straggler().is_none());
    }
}
