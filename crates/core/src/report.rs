//! The end-of-execution utilization report (§3.4, Listing 2).
//!
//! Rank 0 writes a summary to stdout; every rank writes a detailed report
//! to its log file. The format reproduces the paper's Listing 2: run
//! duration, process summary, the LWP table, the HWT table (restricted to
//! the process affinity list), and the per-GPU min/avg/max metric block.

use crate::monitor::{Monitor, ProcessWatch};
use std::fmt::Write as _;
use zerosum_gpu::GpuMonitor;
use zerosum_proc::Pid;

/// GPU context for the report: the monitor holding device statistics plus
/// `(slot, physical, visible)` index mappings per monitored device.
pub struct GpuReportContext<'a> {
    /// The accumulated statistics.
    pub monitor: &'a GpuMonitor,
    /// `(slot in monitor, physical index, visible index)` rows to print.
    pub devices: Vec<(u32, u32, u32)>,
}

/// Renders the complete report for one process (the per-rank log
/// content).
pub fn render_process_report(
    monitor: &Monitor,
    pid: Pid,
    duration_s: f64,
    gpu: Option<&GpuReportContext<'_>>,
) -> String {
    let mut out = String::new();
    let Some(watch) = monitor.process(pid) else {
        return format!("ZeroSum: process {pid} was never observed\n");
    };
    writeln!(out, "Duration of execution: {duration_s:.3}s").unwrap();
    writeln!(out).unwrap();
    render_process_summary(&mut out, watch);
    writeln!(out).unwrap();
    render_lwp_summary(&mut out, watch);
    writeln!(out).unwrap();
    render_hardware_summary(&mut out, monitor, watch);
    writeln!(out).unwrap();
    render_health_summary(&mut out, monitor, watch);
    if let Some(g) = gpu {
        writeln!(out).unwrap();
        for &(slot, _phys, visible) in &g.devices {
            out.push_str(&g.monitor.render_report(slot, visible));
        }
    }
    out
}

/// Renders the rank-0 stdout summary: the rank-0 process report followed
/// by one-line process summaries for the other ranks.
pub fn render_summary(
    monitor: &Monitor,
    duration_s: f64,
    gpu: Option<&GpuReportContext<'_>>,
) -> String {
    let Some(first) = monitor.processes().first() else {
        return "ZeroSum: no processes were monitored\n".to_string();
    };
    let mut out = render_process_report(monitor, first.info.pid, duration_s, gpu);
    if monitor.processes().len() > 1 {
        out.push('\n');
        out.push_str("Other ranks:\n");
        for w in &monitor.processes()[1..] {
            writeln!(
                out,
                "MPI {:03} - PID {} - Node {} - CPUs allowed: [{}]",
                w.info.rank.unwrap_or(0),
                w.info.pid,
                w.info.hostname,
                w.cpus_allowed.to_list_string()
            )
            .unwrap();
        }
    }
    out
}

fn render_process_summary(out: &mut String, w: &ProcessWatch) {
    writeln!(out, "Process Summary:").unwrap();
    match w.info.rank {
        Some(r) => writeln!(
            out,
            "MPI {:03} - PID {} - Node {} - CPUs allowed: [{}]",
            r,
            w.info.pid,
            w.info.hostname,
            w.cpus_allowed.to_list_string()
        )
        .unwrap(),
        None => writeln!(
            out,
            "PID {} - Node {} - CPUs allowed: [{}]",
            w.info.pid,
            w.info.hostname,
            w.cpus_allowed.to_list_string()
        )
        .unwrap(),
    }
}

fn render_lwp_summary(out: &mut String, w: &ProcessWatch) {
    writeln!(out, "LWP (thread) Summary:").unwrap();
    let mut tracks: Vec<_> = w.lwps.tracks().collect();
    tracks.sort_by_key(|t| t.tid);
    for t in tracks {
        writeln!(
            out,
            "LWP {}: {} - stime: {:>6.2}, utime: {:>6.2}, nv_ctx: {}, ctx: {}, CPUs: [{}]",
            t.tid,
            t.kind.label(t.is_openmp),
            t.avg_stime_per_period(),
            t.avg_utime_per_period(),
            t.total_nvcsw(),
            t.total_vcsw(),
            t.affinity.to_list_string()
        )
        .unwrap();
    }
}

fn render_health_summary(out: &mut String, monitor: &Monitor, w: &ProcessWatch) {
    let l = &w.health.ledger;
    writeln!(out, "Sampling Health:").unwrap();
    writeln!(
        out,
        "samples ok: {}, retried: {}, degraded: {}, dropped: {}, quarantined: {}",
        l.ok,
        l.retried,
        l.degraded,
        l.dropped,
        w.health.quarantined_now()
    )
    .unwrap();
    let mut errs = String::new();
    for kind in zerosum_proc::SourceErrorKind::ALL {
        if !errs.is_empty() {
            errs.push_str(", ");
        }
        let total = l.errors_of(kind) + monitor.node_health.errors_of(kind);
        write!(errs, "{}: {}", kind.label(), total).unwrap();
    }
    writeln!(out, "errors (incl. node records): {errs}").unwrap();
    if monitor.supervisor.restarts > 0 {
        let gaps: Vec<String> = monitor
            .supervisor
            .gap_times_s
            .iter()
            .map(|t| format!("{t:.3}s"))
            .collect();
        writeln!(
            out,
            "supervisor restarts: {} (gaps at: {})",
            monitor.supervisor.restarts,
            gaps.join(", ")
        )
        .unwrap();
    }
    // Overload control: every governor period change, plus the deadline
    // watchdog's shedding record. Silent when nothing happened, so the
    // healthy-node report is unchanged.
    for c in &monitor.governor.changes {
        writeln!(
            out,
            "governor: period {} -> {} ms at t={:.3}s (round cost {} us > budget {} us)",
            c.from_us / 1_000,
            c.to_us / 1_000,
            c.t_s,
            c.cost_us,
            c.budget_us
        )
        .unwrap();
    }
    if monitor.governor.overruns > 0 {
        writeln!(
            out,
            "watchdog: {} deadline overrun(s), {} round(s) shed per-LWP detail",
            monitor.governor.overruns, monitor.governor.shed_rounds
        )
        .unwrap();
    }
}

fn render_hardware_summary(out: &mut String, monitor: &Monitor, w: &ProcessWatch) {
    writeln!(out, "Hardware Summary:").unwrap();
    for cpu in w.cpus_allowed.iter() {
        if let Some((idle, system, user)) = monitor.hwt.overall(cpu) {
            writeln!(
                out,
                "CPU {cpu:03} - idle: {idle:>6.2}, system: {system:>6.2}, user: {user:>6.2}"
            )
            .unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZeroSumConfig;
    use crate::monitor::ProcessInfo;
    use zerosum_sched::{Behavior, NodeSim, SchedParams, SimProcSource};
    use zerosum_topology::{presets, CpuSet};

    fn monitored_run() -> (Monitor, Pid, f64) {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "miniqmc",
            CpuSet::from_indices([0u32, 1]),
            4_096,
            Behavior::FiniteCompute {
                remaining_us: 2_500_000,
                chunk_us: 10_000,
            },
        );
        sim.spawn_task(
            pid,
            "OpenMP",
            Some(CpuSet::single(1)),
            Behavior::FiniteCompute {
                remaining_us: 2_500_000,
                chunk_us: 10_000,
            },
            false,
        );
        let mut mon = Monitor::new(ZeroSumConfig::default());
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(0),
            hostname: "simnode0001".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        for i in 1..=4u64 {
            sim.run_for(1_000_000);
            mon.sample(i as f64, &SimProcSource::new(&sim));
        }
        (mon, pid, 4.0)
    }

    #[test]
    fn report_has_all_sections_in_listing2_shape() {
        let (mon, pid, dur) = monitored_run();
        let rep = render_process_report(&mon, pid, dur, None);
        assert!(rep.starts_with("Duration of execution: 4.000s"));
        assert!(rep.contains("Process Summary:"));
        assert!(rep.contains(&format!(
            "MPI 000 - PID {pid} - Node simnode0001 - CPUs allowed: [0-1]"
        )));
        assert!(rep.contains("LWP (thread) Summary:"));
        assert!(rep.contains(&format!("LWP {pid}: Main - ")));
        assert!(rep.contains("OpenMP - "));
        assert!(rep.contains("Hardware Summary:"));
        assert!(rep.contains("CPU 000 - idle:"));
        assert!(rep.contains("CPU 001 - idle:"));
        // The HWT table is limited to the process mask.
        assert!(!rep.contains("CPU 002"));
    }

    #[test]
    fn busy_threads_show_high_utime() {
        let (mon, pid, dur) = monitored_run();
        let rep = render_process_report(&mon, pid, dur, None);
        // Both threads are CPU-bound on dedicated CPUs: utime ≈ 100
        // jiffies/period.
        let lwp_line = rep
            .lines()
            .find(|l| l.starts_with(&format!("LWP {pid}:")))
            .unwrap();
        let utime: f64 = lwp_line
            .split("utime:")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(utime > 80.0, "utime {utime} in {lwp_line}");
    }

    #[test]
    fn governor_changes_and_shed_rounds_appear_in_health_section() {
        let (mut mon, pid, dur) = monitored_run();
        let rep = render_process_report(&mon, pid, dur, None);
        assert!(!rep.contains("governor:"), "healthy run is silent");
        assert!(!rep.contains("watchdog:"));
        // A cost spike over both the budget and the deadline leaves a
        // period change and an overrun on record.
        mon.note_round_cost(3.0, 600_000);
        let rep = render_process_report(&mon, pid, dur, None);
        assert!(
            rep.contains("governor: period 1000 -> 2000 ms at t=3.000s"),
            "{rep}"
        );
        assert!(rep.contains("(round cost 600000 us > budget 10000 us)"));
        assert!(rep.contains("watchdog: 1 deadline overrun(s)"), "{rep}");
    }

    #[test]
    fn unknown_pid_report() {
        let (mon, _, _) = monitored_run();
        let rep = render_process_report(&mon, 424242, 1.0, None);
        assert!(rep.contains("never observed"));
    }

    #[test]
    fn summary_lists_other_ranks() {
        let (mut mon, _, dur) = monitored_run();
        mon.watch_process(ProcessInfo {
            pid: 777,
            rank: Some(1),
            hostname: "simnode0001".into(),
            gpus: vec![],
            cpus_allowed: Default::default(),
        });
        let s = render_summary(&mon, dur, None);
        assert!(s.contains("Other ranks:"));
        assert!(s.contains("MPI 001 - PID 777"));
    }

    #[test]
    fn empty_monitor_summary() {
        let mon = Monitor::new(ZeroSumConfig::default());
        assert!(render_summary(&mon, 0.0, None).contains("no processes"));
    }
}
