//! Lock-order sanitizer: a named, tracked `Mutex` wrapper.
//!
//! [`Tracked`] wraps a `std::sync::Mutex` with a static name. In debug
//! builds every acquisition records, per thread, the set of tracked
//! locks already held and registers each `held -> acquired` pair in a
//! global lock-order edge registry; [`observed_lock_edges`] drains that
//! registry for the audit drill, which asserts every dynamically
//! observed edge also appears in the static lock-order graph built by
//! `zerosum audit` (the names here are the graph's node keys). In
//! release builds the bookkeeping compiles away entirely — `lock()` is
//! a direct delegation to the inner mutex.
//!
//! The registry and held-stack are deliberately *plain* `std` types:
//! the sanitizer's own serialization must not show up as tracked edges,
//! and the static pass likewise excludes this file from acquisition
//! extraction (it models `Tracked` use at call sites instead).

use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, Mutex, MutexGuard, PoisonError, TryLockError, TryLockResult};

#[cfg(debug_assertions)]
mod record {
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    /// Global registry of observed `held -> acquired` name pairs.
    static EDGES: Mutex<BTreeSet<(&'static str, &'static str)>> = Mutex::new(BTreeSet::new());

    thread_local! {
        /// Tracked locks currently held by this thread, in acquisition
        /// order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn acquired(name: &'static str) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if !h.is_empty() {
                // Poison is harmless here: the registry holds plain
                // copyable pairs.
                let mut edges = EDGES
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for &held in h.iter() {
                    edges.insert((held, name));
                }
            }
            h.push(name);
        });
    }

    pub(super) fn released(name: &'static str) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            // Guards need not drop LIFO; remove the *last* occurrence.
            if let Some(pos) = h.iter().rposition(|&n| n == name) {
                h.remove(pos);
            }
        });
    }

    pub(super) fn edges() -> Vec<(&'static str, &'static str)> {
        EDGES
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .copied()
            .collect()
    }

    pub(super) fn clear() {
        EDGES
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

/// A named mutex whose acquisition order is recorded in debug builds.
#[derive(Debug)]
pub struct Tracked<T: ?Sized> {
    name: &'static str,
    inner: Mutex<T>,
}

/// The guard returned by [`Tracked::lock`]; releases the sanitizer's
/// held-stack entry on drop.
#[derive(Debug)]
pub struct TrackedGuard<'a, T: ?Sized> {
    // Option so Drop can run after the inner guard is gone; always
    // `Some` while the guard is live.
    inner: Option<MutexGuard<'a, T>>,
    name: &'static str,
}

impl<T> Tracked<T> {
    /// Wraps `value` under `name`. Names are the audit graph's node
    /// keys — use stable, dotted, crate-qualified names.
    pub const fn new(name: &'static str, value: T) -> Self {
        Tracked {
            name,
            inner: Mutex::new(value),
        }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Tracked<T> {
    /// The sanitizer name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, recording order in debug builds. Mirrors
    /// [`Mutex::lock`], including poisoning.
    pub fn lock(&self) -> LockResult<TrackedGuard<'_, T>> {
        match self.inner.lock() {
            Ok(g) => Ok(self.wrap(g)),
            Err(p) => Err(PoisonError::new(self.wrap(p.into_inner()))),
        }
    }

    /// Attempts the lock without blocking; a successful try still
    /// *holds*, so it records like [`Tracked::lock`].
    pub fn try_lock(&self) -> TryLockResult<TrackedGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Ok(self.wrap(g)),
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            Err(TryLockError::Poisoned(p)) => Err(TryLockError::Poisoned(PoisonError::new(
                self.wrap(p.into_inner()),
            ))),
        }
    }

    fn wrap<'a>(&'a self, g: MutexGuard<'a, T>) -> TrackedGuard<'a, T> {
        #[cfg(debug_assertions)]
        record::acquired(self.name);
        TrackedGuard {
            inner: Some(g),
            name: self.name,
        }
    }
}

impl<T: ?Sized> Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<T: ?Sized> DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after drop")
    }
}

impl<T: ?Sized> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        #[cfg(debug_assertions)]
        record::released(self.name);
        #[cfg(not(debug_assertions))]
        let _ = self.name;
    }
}

/// All `held -> acquired` pairs observed since the last
/// [`clear_observed_lock_edges`]. Empty in release builds.
pub fn observed_lock_edges() -> Vec<(&'static str, &'static str)> {
    #[cfg(debug_assertions)]
    {
        record::edges()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Resets the observed-edge registry (drill setup).
pub fn clear_observed_lock_edges() {
    #[cfg(debug_assertions)]
    record::clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Distinct names from the shipped monitors so parallel tests don't
    // interfere with the drill's edge set.
    static T_A: Tracked<u32> = Tracked::new("test.sync.a", 0);
    static T_B: Tracked<u32> = Tracked::new("test.sync.b", 0);

    #[test]
    fn nested_acquisition_records_an_edge_in_debug() {
        {
            let _a = T_A.lock().unwrap();
            let _b = T_B.lock().unwrap();
        }
        let edges = observed_lock_edges();
        if cfg!(debug_assertions) {
            assert!(edges.contains(&("test.sync.a", "test.sync.b")), "{edges:?}");
        } else {
            assert!(edges.is_empty());
        }
    }

    #[test]
    fn sequential_acquisition_records_nothing() {
        static T_C: Tracked<u32> = Tracked::new("test.sync.c", 0);
        static T_D: Tracked<u32> = Tracked::new("test.sync.d", 0);
        {
            let mut c = T_C.lock().unwrap();
            *c += 1;
        }
        {
            let mut d = T_D.lock().unwrap();
            *d += 1;
        }
        let edges = observed_lock_edges();
        assert!(
            !edges.contains(&("test.sync.c", "test.sync.d")),
            "{edges:?}"
        );
    }

    #[test]
    fn try_lock_holds_and_guard_data_flows() {
        static T_E: Tracked<Vec<u32>> = Tracked::new("test.sync.e", Vec::new());
        {
            let mut g = T_E.try_lock().unwrap();
            g.push(7);
        }
        assert_eq!(*T_E.lock().unwrap(), vec![7]);
    }
}
