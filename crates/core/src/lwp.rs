//! Per-LWP (thread) tracking.
//!
//! §3.1.1 of the paper: the asynchronous thread discovers LWPs from
//! `/proc/<pid>/task`, re-reads each one's affinity every period (it may
//! change after creation), and records state, user/system time, context
//! switches, page faults, and the CPU each LWP last ran on. This module
//! keeps that per-thread history and classifies threads as Main /
//! ZeroSum / OpenMP / Other like the paper's LWP tables.

use std::collections::HashSet;
use zerosum_proc::{TaskStat, TaskState, TaskStatus, Tid};
use zerosum_stats::Ring;
use zerosum_topology::CpuSet;

/// Thread classification in the LWP report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LwpKind {
    /// The process main thread.
    Main,
    /// ZeroSum's own asynchronous monitor thread.
    ZeroSum,
    /// An OpenMP team thread (identified via OMPT or naming).
    OpenMp,
    /// Anything else (MPI helpers, GPU runtime threads, …).
    Other,
}

impl LwpKind {
    /// The label used in the report; the main thread may additionally be
    /// an OpenMP thread (`Main, OpenMP` — the † case in the paper's
    /// tables).
    pub fn label(self, also_openmp: bool) -> String {
        match (self, also_openmp) {
            (LwpKind::Main, true) => "Main, OpenMP".to_string(),
            (LwpKind::Main, false) => "Main".to_string(),
            (LwpKind::ZeroSum, _) => "ZeroSum".to_string(),
            (LwpKind::OpenMp, _) => "OpenMP".to_string(),
            (LwpKind::Other, _) => "Other".to_string(),
        }
    }
}

/// One periodic observation of one LWP.
#[derive(Debug, Clone, PartialEq)]
pub struct LwpSample {
    /// Virtual/wall time of the sample, seconds from monitoring start.
    pub t_s: f64,
    /// Scheduler state.
    pub state: TaskState,
    /// Cumulative user jiffies.
    pub utime: u64,
    /// Cumulative system jiffies.
    pub stime: u64,
    /// Cumulative minor faults.
    pub minflt: u64,
    /// Cumulative major faults.
    pub majflt: u64,
    /// Cumulative pages swapped.
    pub nswap: u64,
    /// CPU the LWP last executed on.
    pub processor: u32,
    /// Cumulative voluntary context switches.
    pub vcsw: u64,
    /// Cumulative non-voluntary context switches.
    pub nvcsw: u64,
    /// Cumulative runqueue wait from `schedstat`, nanoseconds (`None`
    /// when the kernel does not expose it).
    pub wait_ns: Option<u64>,
}

/// The tracked history of one LWP.
#[derive(Debug, Clone)]
pub struct LwpTrack {
    /// Thread id.
    pub tid: Tid,
    /// Thread name from `status`.
    pub name: String,
    /// Classification.
    pub kind: LwpKind,
    /// True if the thread is (also) an OpenMP team member.
    pub is_openmp: bool,
    /// Most recent affinity mask.
    pub affinity: CpuSet,
    /// True if the affinity mask ever changed between samples.
    pub affinity_changed: bool,
    /// Distinct CPUs observed in the `processor` field.
    pub cpus_seen: HashSet<u32>,
    /// Sample history, in time order — a bounded ring that downsamples
    /// 2:1 when full, so a multi-hour run holds constant memory.
    pub samples: Ring<LwpSample>,
    /// True if the thread disappeared from the task list.
    pub exited: bool,
    /// `starttime` (field 22 of `stat`) captured at the first
    /// observation. A later sample for the same tid with a different
    /// `starttime` is a *recycled* id: the kernel reaped this task and
    /// gave its id to a new one.
    pub starttime: u64,
    /// True once this track was closed because its tid was recycled; a
    /// fresh track owns the tid from then on.
    pub retired: bool,
    /// The monitor's nominal sampling period, seconds. Per-period
    /// averages normalize counter deltas by *elapsed time* in units of
    /// this period, so rounds shed by the deadline watchdog or stretched
    /// by the overhead governor do not inflate the reported rates.
    pub period_s: f64,
}

impl LwpTrack {
    #[allow(clippy::too_many_arguments)]
    fn new(
        tid: Tid,
        name: String,
        kind: LwpKind,
        is_openmp: bool,
        affinity: CpuSet,
        starttime: u64,
        capacity: usize,
        period_s: f64,
    ) -> Self {
        LwpTrack {
            tid,
            name,
            kind,
            is_openmp,
            affinity,
            affinity_changed: false,
            cpus_seen: HashSet::new(),
            samples: Ring::with_capacity(capacity),
            exited: false,
            starttime,
            retired: false,
            period_s,
        }
    }

    /// Latest sample, if any.
    pub fn last(&self) -> Option<&LwpSample> {
        self.samples.last()
    }

    /// First sample, if any.
    pub fn first(&self) -> Option<&LwpSample> {
        self.samples.first()
    }

    /// Average jiffies of user time per sample period — the `utime`
    /// column of the paper's tables.
    pub fn avg_utime_per_period(&self) -> f64 {
        self.delta_per_period(|s| s.utime)
    }

    /// Average jiffies of system time per sample period — the `stime`
    /// column.
    pub fn avg_stime_per_period(&self) -> f64 {
        self.delta_per_period(|s| s.stime)
    }

    /// Counter delta over the series, per nominal sampling period.
    /// Normalized by elapsed *time*, not sample count: rounds dropped by
    /// the deadline watchdog, periods widened by the overhead governor,
    /// and samples merged by ring downsampling leave the rate honest.
    fn delta_per_period(&self, f: impl Fn(&LwpSample) -> u64) -> f64 {
        match self.samples.as_slice() {
            [] => 0.0,
            [only] => f(only) as f64,
            [first, .., last] => {
                let delta = f(last).saturating_sub(f(first)) as f64;
                let span_s = last.t_s - first.t_s;
                if span_s > 0.0 && self.period_s > 0.0 {
                    delta * self.period_s / span_s
                } else {
                    delta / (self.samples.len() - 1) as f64
                }
            }
        }
    }

    /// Fraction of wall time this LWP spent on CPU between the first and
    /// last samples (0.0–1.0+, period-independent).
    pub fn cpu_fraction(&self) -> f64 {
        let (Some(first), Some(last)) = (self.first(), self.last()) else {
            return 0.0;
        };
        let dt = last.t_s - first.t_s;
        if dt <= 0.0 {
            return 0.0;
        }
        let jiffies = (last.utime + last.stime).saturating_sub(first.utime + first.stime);
        jiffies as f64 / (dt * zerosum_proc::USER_HZ as f64)
    }

    /// Total non-voluntary context switches observed (the `nvctx`
    /// column).
    pub fn total_nvcsw(&self) -> u64 {
        self.last().map(|s| s.nvcsw).unwrap_or(0)
    }

    /// Total voluntary context switches (the `ctx` column).
    pub fn total_vcsw(&self) -> u64 {
        self.last().map(|s| s.vcsw).unwrap_or(0)
    }

    /// Number of migrations observed through the `processor` field
    /// (changes between consecutive samples). Samples taken before the
    /// thread ever consumed CPU are ignored — a thread that has not run
    /// cannot have migrated.
    pub fn observed_migrations(&self) -> usize {
        self.samples
            .windows(2)
            .filter(|w| {
                let ran_before = w[0].utime + w[0].stime > 0;
                ran_before && w[0].processor != w[1].processor
            })
            .count()
    }

    /// Total runqueue-wait observed through `schedstat`, seconds; `None`
    /// when the kernel never exposed it.
    pub fn total_wait_s(&self) -> Option<f64> {
        self.last()
            .and_then(|s| s.wait_ns)
            .map(|ns| ns as f64 / 1e9)
    }

    /// Fraction of samples observed in each scheduler state, as
    /// `(state, fraction)` pairs sorted descending — e.g. a GPU-offload
    /// thread shows a large `S` share while it waits on kernels.
    pub fn state_fractions(&self) -> Vec<(TaskState, f64)> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        let mut counts: Vec<(TaskState, usize)> = Vec::new();
        for s in &self.samples {
            match counts.iter_mut().find(|(st, _)| *st == s.state) {
                Some((_, c)) => *c += 1,
                None => counts.push((s.state, 1)),
            }
        }
        let n = self.samples.len() as f64;
        let mut out: Vec<(TaskState, f64)> = counts
            .into_iter()
            .map(|(st, c)| (st, c as f64 / n))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Whether the LWP made progress (consumed CPU) in the last `n`
    /// sample windows. Used by the §3.3 progress/deadlock heuristics.
    pub fn progressed_recently(&self, n: usize) -> bool {
        if self.samples.len() < 2 {
            return true; // not enough data to claim a stall
        }
        let take = n.min(self.samples.len() - 1);
        let Some(newest) = self.samples.last() else {
            return true;
        };
        let old = &self.samples[self.samples.len() - 1 - take];
        newest.utime + newest.stime > old.utime + old.stime
    }
}

/// The LWP registry of one monitored process.
#[derive(Debug)]
pub struct LwpRegistry {
    tracks: Vec<LwpTrack>,
    omp_tids: HashSet<Tid>,
    /// Ring capacity for new tracks' sample series.
    capacity: usize,
    /// Nominal sampling period handed to new tracks, seconds.
    period_s: f64,
}

impl Default for LwpRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl LwpRegistry {
    /// An empty registry with the default series capacity.
    pub fn new() -> Self {
        Self::with_capacity(zerosum_stats::DEFAULT_SERIES_CAPACITY)
    }

    /// An empty registry whose tracks hold at most `capacity` samples
    /// (downsampling 2:1 beyond that), assuming a 1 s sampling period.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_period(capacity, 1.0)
    }

    /// Like [`LwpRegistry::with_capacity`], with an explicit nominal
    /// sampling period for per-period rate normalization.
    pub fn with_capacity_and_period(capacity: usize, period_s: f64) -> Self {
        LwpRegistry {
            tracks: Vec::new(),
            omp_tids: HashSet::new(),
            capacity,
            period_s,
        }
    }

    /// Marks `tid` as an OpenMP thread (the OMPT callback path,
    /// §3.1.2).
    pub fn register_omp_thread(&mut self, tid: Tid) {
        self.omp_tids.insert(tid);
        if let Some(t) = self.tracks.iter_mut().find(|t| t.tid == tid && !t.retired) {
            t.is_openmp = true;
            if t.kind == LwpKind::Other {
                t.kind = LwpKind::OpenMp;
            }
        }
    }

    /// Classifies a thread at discovery time.
    fn classify(&self, tid: Tid, pid: Tid, name: &str) -> (LwpKind, bool) {
        let is_omp = self.omp_tids.contains(&tid) || name == "OpenMP";
        if tid == pid {
            (LwpKind::Main, is_omp)
        } else if name.starts_with("ZeroSum") {
            (LwpKind::ZeroSum, false)
        } else if is_omp {
            (LwpKind::OpenMp, true)
        } else {
            (LwpKind::Other, false)
        }
    }

    /// Folds one periodic observation of `tid` into the registry.
    pub fn observe(&mut self, pid: Tid, t_s: f64, stat: &TaskStat, status: &TaskStatus) {
        self.observe_with_schedstat(pid, t_s, stat, status, None)
    }

    /// Like [`LwpRegistry::observe`], additionally recording the kernel's
    /// `schedstat` runqueue-wait counter when available.
    pub fn observe_with_schedstat(
        &mut self,
        pid: Tid,
        t_s: f64,
        stat: &TaskStat,
        status: &TaskStatus,
        schedstat: Option<zerosum_proc::SchedStat>,
    ) {
        let tid = stat.tid;
        let existing = self.tracks.iter().position(|t| t.tid == tid && !t.retired);
        // PID-reuse guard: a known tid reporting a different `starttime`
        // is a brand-new task wearing a recycled id. Splicing its
        // counters onto the dead task's series would corrupt both
        // histories, so the old track is closed and a fresh one opened.
        let existing = match existing.and_then(|i| self.tracks.get_mut(i).map(|t| (i, t))) {
            Some((_, old)) if old.starttime != stat.starttime => {
                old.retired = true;
                old.exited = true;
                None
            }
            Some((i, _)) => Some(i),
            None => None,
        };
        let idx = match existing {
            Some(i) => i,
            None => {
                let (kind, is_omp) = self.classify(tid, pid, &status.name);
                self.tracks.push(LwpTrack::new(
                    tid,
                    status.name.clone(),
                    kind,
                    is_omp,
                    status.cpus_allowed.clone(),
                    stat.starttime,
                    self.capacity,
                    self.period_s,
                ));
                self.tracks.len() - 1
            }
        };
        // `idx` is valid by construction (found or just pushed); stay
        // panic-free in the sampling loop regardless.
        let Some(track) = self.tracks.get_mut(idx) else {
            return;
        };
        if track.affinity != status.cpus_allowed {
            track.affinity_changed = true;
            track.affinity = status.cpus_allowed.clone();
        }
        track.cpus_seen.insert(stat.processor);
        track.samples.push(LwpSample {
            t_s,
            state: stat.state,
            utime: stat.utime,
            stime: stat.stime,
            minflt: stat.minflt,
            majflt: stat.majflt,
            nswap: stat.nswap,
            processor: stat.processor,
            vcsw: status.voluntary_ctxt_switches,
            nvcsw: status.nonvoluntary_ctxt_switches,
            wait_ns: schedstat.map(|ss| ss.wait_ns),
        });
    }

    /// Marks threads absent from `live` as exited.
    pub fn mark_exited(&mut self, live: &[Tid]) {
        for t in &mut self.tracks {
            if !live.contains(&t.tid) {
                t.exited = true;
            }
        }
    }

    /// All tracks in tid order.
    pub fn tracks(&self) -> impl Iterator<Item = &LwpTrack> {
        self.tracks.iter()
    }

    /// Look up a track. A recycled tid resolves to the *live* track; the
    /// retired one remains reachable through [`LwpRegistry::tracks`].
    pub fn track(&self, tid: Tid) -> Option<&LwpTrack> {
        self.tracks
            .iter()
            .find(|t| t.tid == tid && !t.retired)
            .or_else(|| self.tracks.iter().find(|t| t.tid == tid))
    }

    /// Number of LWPs ever seen.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// True if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(tid: Tid, utime: u64, stime: u64, cpu: u32) -> TaskStat {
        TaskStat {
            tid,
            comm: "x".into(),
            state: TaskState::Running,
            minflt: 0,
            majflt: 0,
            utime,
            stime,
            nice: 0,
            num_threads: 2,
            processor: cpu,
            nswap: 0,
            starttime: 0,
        }
    }

    fn status(tid: Tid, pid: Tid, name: &str, cpus: &str, v: u64, nv: u64) -> TaskStatus {
        TaskStatus {
            name: name.into(),
            tid,
            tgid: pid,
            state: TaskState::Running,
            vm_rss_kib: 0,
            vm_size_kib: 0,
            vm_hwm_kib: 0,
            cpus_allowed: CpuSet::parse_list(cpus).unwrap(),
            voluntary_ctxt_switches: v,
            nonvoluntary_ctxt_switches: nv,
        }
    }

    #[test]
    fn classification() {
        let mut reg = LwpRegistry::new();
        reg.register_omp_thread(103);
        reg.observe(
            100,
            0.0,
            &stat(100, 0, 0, 1),
            &status(100, 100, "app", "1-7", 0, 0),
        );
        reg.observe(
            100,
            0.0,
            &stat(101, 0, 0, 7),
            &status(101, 100, "ZeroSum", "7", 0, 0),
        );
        reg.observe(
            100,
            0.0,
            &stat(102, 0, 0, 2),
            &status(102, 100, "OpenMP", "1-7", 0, 0),
        );
        reg.observe(
            100,
            0.0,
            &stat(103, 0, 0, 3),
            &status(103, 100, "worker", "1-7", 0, 0),
        );
        reg.observe(
            100,
            0.0,
            &stat(104, 0, 0, 4),
            &status(104, 100, "hip-thread", "1-7", 0, 0),
        );
        let kinds: Vec<LwpKind> = reg.tracks().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                LwpKind::Main,
                LwpKind::ZeroSum,
                LwpKind::OpenMp,
                LwpKind::OpenMp, // via OMPT registration
                LwpKind::Other
            ]
        );
    }

    #[test]
    fn main_also_openmp_label() {
        let mut reg = LwpRegistry::new();
        reg.register_omp_thread(100);
        reg.observe(
            100,
            0.0,
            &stat(100, 0, 0, 1),
            &status(100, 100, "app", "1", 0, 0),
        );
        let t = reg.track(100).unwrap();
        assert_eq!(t.kind, LwpKind::Main);
        assert!(t.is_openmp);
        assert_eq!(t.kind.label(t.is_openmp), "Main, OpenMP");
    }

    #[test]
    fn per_period_averages() {
        let mut reg = LwpRegistry::new();
        // Cumulative utime 0,90,180,270 with stime 0,3,6,9: avg 90 / 3.
        for (i, (u, s)) in [(0, 0), (90, 3), (180, 6), (270, 9)].iter().enumerate() {
            reg.observe(
                100,
                i as f64,
                &stat(100, *u, *s, 1),
                &status(100, 100, "app", "1", 10, 20),
            );
        }
        let t = reg.track(100).unwrap();
        assert!((t.avg_utime_per_period() - 90.0).abs() < 1e-12);
        assert!((t.avg_stime_per_period() - 3.0).abs() < 1e-12);
        assert_eq!(t.total_vcsw(), 10);
        assert_eq!(t.total_nvcsw(), 20);
    }

    #[test]
    fn migration_and_affinity_tracking() {
        let mut reg = LwpRegistry::new();
        reg.observe(1, 0.0, &stat(2, 0, 0, 3), &status(2, 1, "w", "1-7", 0, 0));
        reg.observe(1, 1.0, &stat(2, 10, 0, 3), &status(2, 1, "w", "1-7", 0, 0));
        reg.observe(1, 2.0, &stat(2, 20, 0, 5), &status(2, 1, "w", "1-7", 0, 0));
        reg.observe(1, 3.0, &stat(2, 30, 0, 5), &status(2, 1, "w", "2-6", 0, 0));
        let t = reg.track(2).unwrap();
        assert_eq!(t.observed_migrations(), 1);
        assert!(t.affinity_changed);
        assert_eq!(t.cpus_seen.len(), 2);
    }

    #[test]
    fn progress_detection() {
        let mut reg = LwpRegistry::new();
        for i in 0..6 {
            let u = if i < 3 { i * 10 } else { 30 }; // stalls after t=3
            reg.observe(
                1,
                i as f64,
                &stat(2, u, 0, 1),
                &status(2, 1, "w", "1", 0, 0),
            );
        }
        let t = reg.track(2).unwrap();
        assert!(!t.progressed_recently(2));
        assert!(t.progressed_recently(5));
    }

    #[test]
    fn state_fractions_sum_to_one() {
        let mut reg = LwpRegistry::new();
        for (i, st) in ['R', 'R', 'S', 'R'].iter().enumerate() {
            let mut stat_rec = stat(2, i as u64, 0, 1);
            stat_rec.state = TaskState::from_code(*st).unwrap();
            reg.observe(1, i as f64, &stat_rec, &status(2, 1, "w", "1", 0, 0));
        }
        let fr = reg.track(2).unwrap().state_fractions();
        assert_eq!(fr[0].0, TaskState::Running);
        assert!((fr[0].1 - 0.75).abs() < 1e-12);
        assert!((fr.iter().map(|(_, f)| f).sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exited_marking() {
        let mut reg = LwpRegistry::new();
        reg.observe(1, 0.0, &stat(2, 0, 0, 1), &status(2, 1, "w", "1", 0, 0));
        reg.observe(1, 0.0, &stat(3, 0, 0, 1), &status(3, 1, "w", "1", 0, 0));
        reg.mark_exited(&[3]);
        assert!(reg.track(2).unwrap().exited);
        assert!(!reg.track(3).unwrap().exited);
    }

    #[test]
    fn recycled_tid_closes_old_series_and_opens_new() {
        let mut reg = LwpRegistry::new();
        // Old task: starttime 0, accumulates counters.
        reg.observe(1, 0.0, &stat(2, 10, 0, 1), &status(2, 1, "old", "1", 5, 7));
        reg.observe(1, 1.0, &stat(2, 20, 0, 1), &status(2, 1, "old", "1", 6, 8));
        // Recycled: same tid, later starttime, counters restart at zero.
        let mut recycled = stat(2, 1, 0, 3);
        recycled.starttime = 250;
        reg.observe(1, 2.0, &recycled, &status(2, 1, "new", "3", 0, 1));
        // Two tracks now exist for tid 2; the old one is closed.
        let tracks: Vec<&LwpTrack> = reg.tracks().filter(|t| t.tid == 2).collect();
        assert_eq!(tracks.len(), 2);
        let old = tracks.iter().find(|t| t.retired).unwrap();
        assert!(old.exited, "retired track is closed");
        assert_eq!(old.samples.len(), 2);
        assert_eq!(old.last().unwrap().utime, 20, "old series unspliced");
        // Lookup resolves to the live track with the fresh series.
        let live = reg.track(2).unwrap();
        assert!(!live.retired);
        assert_eq!(live.starttime, 250);
        assert_eq!(live.samples.len(), 1);
        assert_eq!(live.last().unwrap().utime, 1, "new series starts clean");
        assert_eq!(live.name, "new");
        // Further samples extend only the live track.
        let mut s = stat(2, 2, 0, 3);
        s.starttime = 250;
        reg.observe(1, 3.0, &s, &status(2, 1, "new", "3", 0, 1));
        assert_eq!(reg.track(2).unwrap().samples.len(), 2);
        let old_len = reg
            .tracks()
            .find(|t| t.tid == 2 && t.retired)
            .unwrap()
            .samples
            .len();
        assert_eq!(old_len, 2, "retired series no longer grows");
    }

    #[test]
    fn sample_series_is_bounded_by_ring_capacity() {
        let mut reg = LwpRegistry::with_capacity(8);
        for i in 0..1_000u64 {
            reg.observe(
                1,
                i as f64,
                &stat(2, i, 0, 1),
                &status(2, 1, "w", "1", 0, 0),
            );
        }
        let t = reg.track(2).unwrap();
        assert!(t.samples.len() <= 8);
        assert_eq!(t.first().unwrap().t_s, 0.0, "first sample survives");
        assert_eq!(t.last().unwrap().t_s, 999.0, "latest sample present");
        assert_eq!(t.total_vcsw(), 0);
    }

    #[test]
    fn transient_thread_note() {
        // A thread that appears and disappears between polls is simply
        // never observed — the trade-off §3.1.1 accepts. The registry
        // must not invent it.
        let reg = LwpRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.track(42).is_none());
    }
}
