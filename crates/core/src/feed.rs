//! Live data exportation (§3.3/§3.6 future work).
//!
//! The paper proposes that "ZeroSum could potentially be integrated with
//! data services, providing a continuous stream of data reporting the
//! current state of the application" — feeding tools like LDMS, TAU, or
//! a computational-steering loop. [`SampleFeed`] is that stream: any
//! number of subscribers receive an immutable snapshot after every
//! monitor sample over a bounded channel; slow consumers lose samples
//! rather than ever stalling the monitor (the monitor's <0.5% budget
//! must not depend on downstream readers).

use crate::lwp::LwpKind;
use crate::monitor::Monitor;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use zerosum_proc::{Pid, TaskState, Tid};

/// One thread's state in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct LwpSnapshot {
    /// Thread id.
    pub tid: Tid,
    /// Classification.
    pub kind: LwpKind,
    /// Scheduler state at the sample.
    pub state: TaskState,
    /// Cumulative user jiffies.
    pub utime: u64,
    /// Cumulative system jiffies.
    pub stime: u64,
    /// Cumulative non-voluntary context switches.
    pub nvcsw: u64,
    /// Cumulative voluntary context switches.
    pub vcsw: u64,
    /// CPU the thread last ran on.
    pub processor: u32,
}

/// One process's state in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessSnapshot {
    /// Process id.
    pub pid: Pid,
    /// MPI rank, if any.
    pub rank: Option<u32>,
    /// Resident set size, KiB.
    pub rss_kib: u64,
    /// Live threads at the sample.
    pub lwps: Vec<LwpSnapshot>,
}

/// A full monitoring snapshot, published once per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSnapshot {
    /// Sample time, seconds since monitoring start.
    pub t_s: f64,
    /// Sample ordinal.
    pub round: u64,
    /// Node memory available, KiB.
    pub mem_available_kib: u64,
    /// Per-process state.
    pub processes: Vec<ProcessSnapshot>,
}

/// Fan-out publisher of [`SampleSnapshot`]s.
#[derive(Default)]
pub struct SampleFeed {
    subscribers: Vec<SyncSender<Arc<SampleSnapshot>>>,
    /// Snapshots dropped because a subscriber's channel was full.
    pub dropped: u64,
}

impl SampleFeed {
    /// An empty feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a subscriber with a buffer of `capacity` snapshots.
    pub fn subscribe(&mut self, capacity: usize) -> Receiver<Arc<SampleSnapshot>> {
        let (tx, rx) = sync_channel(capacity.max(1));
        self.subscribers.push(tx);
        rx
    }

    /// Number of live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Publishes a snapshot to every subscriber. Never blocks: full
    /// channels drop the snapshot, disconnected subscribers are removed.
    pub fn publish(&mut self, snap: SampleSnapshot) {
        if self.subscribers.is_empty() {
            return;
        }
        let snap = Arc::new(snap);
        let mut dropped = 0u64;
        self.subscribers
            .retain(|tx| match tx.try_send(Arc::clone(&snap)) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    dropped += 1;
                    true
                }
                Err(TrySendError::Disconnected(_)) => false,
            });
        self.dropped += dropped;
    }
}

impl std::fmt::Debug for SampleFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SampleFeed")
            .field("subscribers", &self.subscribers.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

/// Builds a snapshot from the monitor's current state.
pub fn snapshot_of(monitor: &Monitor) -> SampleSnapshot {
    let processes = monitor
        .processes()
        .iter()
        .map(|w| ProcessSnapshot {
            pid: w.info.pid,
            rank: w.info.rank,
            rss_kib: w.rss_kib(),
            lwps: w
                .lwps
                .tracks()
                .filter(|t| !t.exited)
                .filter_map(|t| {
                    t.last().map(|s| LwpSnapshot {
                        tid: t.tid,
                        kind: t.kind,
                        state: s.state,
                        utime: s.utime,
                        stime: s.stime,
                        nvcsw: s.nvcsw,
                        vcsw: s.vcsw,
                        processor: s.processor,
                    })
                })
                .collect(),
        })
        .collect();
    SampleSnapshot {
        t_s: monitor.last_t_s,
        round: monitor.stats.rounds,
        mem_available_kib: monitor
            .mem
            .samples()
            .last()
            .map(|s| s.available_kib)
            .unwrap_or(0),
        processes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZeroSumConfig;
    use crate::monitor::ProcessInfo;
    use zerosum_sched::{Behavior, NodeSim, SchedParams, SimProcSource};
    use zerosum_topology::{presets, CpuSet};

    fn sampled_monitor() -> Monitor {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "app",
            CpuSet::single(0),
            256,
            Behavior::FiniteCompute {
                remaining_us: 5_000_000,
                chunk_us: 10_000,
            },
        );
        let mut mon = Monitor::new(ZeroSumConfig::default());
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(0),
            hostname: "n".into(),
            gpus: vec![],
            cpus_allowed: CpuSet::single(0),
        });
        for i in 1..=3u64 {
            sim.run_for(1_000_000);
            mon.sample(i as f64, &SimProcSource::new(&sim));
        }
        mon
    }

    #[test]
    fn snapshot_reflects_monitor_state() {
        let mon = sampled_monitor();
        let snap = snapshot_of(&mon);
        assert_eq!(snap.round, 3);
        assert_eq!(snap.t_s, 3.0);
        assert_eq!(snap.processes.len(), 1);
        let p = &snap.processes[0];
        assert_eq!(p.rank, Some(0));
        assert_eq!(p.lwps.len(), 1);
        assert!(p.lwps[0].utime > 100);
        assert!(snap.mem_available_kib > 0);
    }

    #[test]
    fn feed_fans_out_to_all_subscribers() {
        let mon = sampled_monitor();
        let mut feed = SampleFeed::new();
        let rx1 = feed.subscribe(4);
        let rx2 = feed.subscribe(4);
        feed.publish(snapshot_of(&mon));
        assert_eq!(rx1.recv().unwrap().round, 3);
        assert_eq!(rx2.recv().unwrap().round, 3);
        assert_eq!(feed.dropped, 0);
    }

    #[test]
    fn full_subscriber_drops_without_blocking() {
        let mon = sampled_monitor();
        let mut feed = SampleFeed::new();
        let rx = feed.subscribe(1);
        feed.publish(snapshot_of(&mon));
        feed.publish(snapshot_of(&mon)); // channel full → dropped
        assert_eq!(feed.dropped, 1);
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn disconnected_subscribers_are_pruned() {
        let mon = sampled_monitor();
        let mut feed = SampleFeed::new();
        let rx = feed.subscribe(2);
        drop(rx);
        feed.publish(snapshot_of(&mon));
        assert_eq!(feed.subscriber_count(), 0);
    }

    #[test]
    fn no_subscribers_is_free() {
        let mon = sampled_monitor();
        let mut feed = SampleFeed::new();
        feed.publish(snapshot_of(&mon));
        assert_eq!(feed.dropped, 0);
    }
}
