//! Golden-file tests for the wire protocol: every fixture under
//! `tests/fixtures/net/` is a canonical encoded frame, pinned
//! byte-for-byte. The encoding *is* the protocol — these fixtures are
//! what a v1 peer on another machine will actually emit — so any codec
//! change that alters bytes must bump `PROTOCOL_VERSION` and
//! regenerate deliberately:
//!
//! ```text
//! cargo test --test wire_golden -- --ignored regen
//! ```
//!
//! The `evil_*` pair pins the *failure* shapes too: a truncated and a
//! bit-flipped aggregate must keep decoding to the same typed errors.

use std::path::PathBuf;
use zerosum_core::NodeAggregate;
use zerosum_net::{decode_frame, frame_bytes, DecodeError, Frame};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/net")
}

fn read_fixture(name: &str) -> Vec<u8> {
    let path = fixture_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}\nregenerate with: cargo test --test wire_golden -- --ignored regen",
            path.display()
        )
    })
}

/// The canonical frame set: one per tag, with values that exercise
/// every field codec (strings, u32/u64, f64 bit patterns).
fn canonical() -> Vec<(&'static str, Frame)> {
    vec![
        (
            "hello.bin",
            Frame::Hello {
                hostname: "golden-node".to_string(),
            },
        ),
        (
            "heartbeat.bin",
            Frame::Heartbeat {
                round: 42,
                t_s: 4.2,
            },
        ),
        (
            "lwp_detail.bin",
            Frame::LwpDetail {
                round: 42,
                tid: 1337,
                busy_pct: 87.5,
            },
        ),
        (
            "aggregate.bin",
            Frame::Aggregate {
                round: 42,
                agg: NodeAggregate {
                    hostname: "golden-node".to_string(),
                    ranks: 2,
                    lwps: 9,
                    mean_user_pct: 93.25,
                    mean_idle_pct: 4.75,
                    total_nvcsw: 123_456,
                    rss_kib: 10_485_760,
                },
            },
        ),
        ("ack.bin", Frame::Ack { round: 42 }),
        ("bye.bin", Frame::Bye),
    ]
}

/// Builds the evil pair from the canonical aggregate: a mid-payload
/// truncation and a single flipped bit.
fn evil_pair() -> (Vec<u8>, Vec<u8>) {
    let agg = canonical()
        .into_iter()
        .find(|(n, _)| *n == "aggregate.bin")
        .map(|(_, f)| frame_bytes(&f).expect("encode aggregate"))
        .expect("canonical aggregate");
    let truncated = agg.get(..21).expect("aggregate longer than 21B").to_vec();
    let mut corrupt = agg;
    if let Some(b) = corrupt.get_mut(30) {
        *b ^= 0x40;
    }
    (truncated, corrupt)
}

#[test]
fn golden_frames_encode_byte_for_byte() {
    for (name, frame) in canonical() {
        let pinned = read_fixture(name);
        let encoded = frame_bytes(&frame).expect("encode");
        assert_eq!(
            encoded, pinned,
            "{name}: encoding drifted from the pinned v1 bytes — \
             a wire change requires a PROTOCOL_VERSION bump"
        );
    }
}

#[test]
fn golden_frames_decode_to_the_canonical_values() {
    for (name, expected) in canonical() {
        let pinned = read_fixture(name);
        let (decoded, consumed) = decode_frame(&pinned).expect("decode");
        assert_eq!(consumed, pinned.len(), "{name}: trailing bytes");
        // Bit-identical round-trip, including the f64 fields.
        assert_eq!(decoded, expected, "{name}");
    }
}

#[test]
fn evil_truncated_fixture_stays_a_typed_incomplete() {
    let bytes = read_fixture("evil_truncated.bin");
    match decode_frame(&bytes) {
        Err(e) if e.is_incomplete() => {}
        other => panic!("evil_truncated.bin: expected Incomplete, got {other:?}"),
    }
    // And it must match the generator exactly, so the pair can't drift
    // apart from the canonical aggregate.
    assert_eq!(bytes, evil_pair().0);
}

#[test]
fn evil_corrupt_fixture_stays_a_checksum_reject() {
    let bytes = read_fixture("evil_corrupt.bin");
    match decode_frame(&bytes) {
        Err(DecodeError::BadChecksum { carried, computed }) => {
            assert_ne!(carried, computed);
        }
        other => panic!("evil_corrupt.bin: expected BadChecksum, got {other:?}"),
    }
    assert_eq!(bytes, evil_pair().1);
}

/// Regenerates every fixture. Deliberate-only:
/// `cargo test --test wire_golden -- --ignored regen`.
#[test]
#[ignore = "writes fixtures; run only to regenerate after a deliberate protocol bump"]
fn regen() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    for (name, frame) in canonical() {
        let bytes = frame_bytes(&frame).expect("encode");
        std::fs::write(dir.join(name), bytes).expect("write fixture");
    }
    let (truncated, corrupt) = evil_pair();
    std::fs::write(dir.join("evil_truncated.bin"), truncated).expect("write evil_truncated");
    std::fs::write(dir.join("evil_corrupt.bin"), corrupt).expect("write evil_corrupt");
}
