// Linted as crates/core/src/monitor.rs: panics are banned in the
// sampling hot path.
fn next_sample(stat: Option<u64>) -> u64 {
    stat.unwrap()
}

fn comm_of(line: &str) -> &str {
    line.split(')').next().expect("stat line has a comm field")
}
