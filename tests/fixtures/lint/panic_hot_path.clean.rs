// Near-miss twin: the same shapes in panic-free form; `unwrap` appears
// only where the lint must ignore it (comments, strings, test mods).
fn next_sample(stat: Option<u64>) -> u64 {
    stat.unwrap_or(0)
}

fn comm_of(line: &str) -> &str {
    line.split(')').next().unwrap_or("")
}

fn banner() -> &'static str {
    "never .unwrap() or .expect( in a sample round"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
