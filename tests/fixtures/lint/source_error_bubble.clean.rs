// Near-miss twin: reads routed through match/`ok()`; `?` fires only on
// a non-source call.
fn sample_round(src: &dyn ProcSource, pid: u32) -> SourceResult<()> {
    match src.task_stat(pid, pid) {
        Ok(stat) => consume(stat),
        Err(e) => ledger(e),
    }
    let _ = src.meminfo().ok();
    write_summary()?;
    Ok(())
}
