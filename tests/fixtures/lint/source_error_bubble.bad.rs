// Linted as crates/core/src/monitor.rs: a failed /proc read is data
// for the health ledger, never a `?`-abort of the sample round.
fn sample_round(src: &dyn ProcSource, pid: u32) -> SourceResult<()> {
    let stat = src.task_stat(pid, pid)?;
    let mem = src.meminfo()?;
    let _ = (stat, mem);
    Ok(())
}
