// Lexer-hardening regression, linted as a sampling hot-path file. The
// byte string, raw byte string, and nested block comment all contain
// text that must be blanked; only the final unwrap is real code.
fn magic() -> &'static [u8] {
    b"header {{{ x.unwrap() \" not code"
}

fn raw_magic() -> &'static [u8] {
    br#"also } not " code .expect("#
}

/* outer /* inner x.unwrap() */ still comment } { */
fn real(x: Option<u32>) -> u32 {
    x.unwrap()
}
