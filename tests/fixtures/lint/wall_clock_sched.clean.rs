// Near-miss twin: virtual-clock reads only. `Instant::now` appears in
// a comment and a diagnostic string, which must not count.
pub struct VClock {
    now_us: u64,
}

impl VClock {
    fn advance(&mut self, dt_us: u64) -> u64 {
        // Do not replace with Instant::now(); replay depends on this.
        self.now_us += dt_us;
        self.now_us
    }

    fn warn(&self) -> &'static str {
        "wall-clock reads (Instant::now) are banned in the scheduler"
    }
}
