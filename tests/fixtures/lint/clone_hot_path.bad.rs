// Linted as a sampling hot-path file: allocating clones are flagged
// for review (note level).
fn retain(status: &TaskStatus, scratch: &mut Scratch) {
    scratch.comm = status.comm.clone();
    scratch.cpus = status.cpus_allowed.to_vec();
}
