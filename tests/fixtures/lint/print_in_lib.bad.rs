// Linted as library code: libraries report through sinks, not stdio.
fn dump(total: u64) {
    println!("total = {total}");
    eprintln!("warning: {total}");
}
