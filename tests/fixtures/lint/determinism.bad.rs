// Audited standalone with `run_sim` as a determinism root: a
// wall-clock read behind a callee and an iteration over a HashMap both
// make replay diverge between runs.
fn run_sim(tasks: &HashMap<u32, Task>) {
    let t0 = stamp();
    for (tid, task) in tasks.iter() {
        let _ = (tid, task, t0);
    }
}

fn stamp() -> Instant {
    Instant::now()
}
