// Near-miss twin: the reachable chain is panic-free; the unwrap lives
// on an island no root can reach.
fn entry(x: Option<u32>) -> u32 {
    middle(x)
}

fn middle(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

fn island(x: Option<u32>) -> u32 {
    x.unwrap()
}
