// Near-miss twin: the blocking work happens before the lock is taken
// and after the guard's scope ends; the critical section only moves
// already-read data.
fn drain(s: &Shared) {
    let text = fs::read_to_string(path);
    {
        let g = s.alpha.lock();
        g.absorb(&text);
    }
    thread::sleep(backoff);
}
