// Linted as long-lived monitor state: `.push(` into a field off the
// reviewed allowlist is a growth note, split receivers included.
fn observe(&mut self, t_s: f64) {
    self.history.push(t_s);
    self.deeply.nested
        .event_log
        .push(t_s);
}
