// Audited standalone: the guard on `alpha` is held across a sleep and,
// through `flush`, across a file read — both block every other thread
// contending for the lock for the full syscall latency.
fn drain(s: &Shared) {
    let g = s.alpha.lock();
    thread::sleep(backoff);
    flush(&g);
}

fn flush(g: &Guard) {
    let text = fs::read_to_string(path);
    let _ = (g, text);
}
