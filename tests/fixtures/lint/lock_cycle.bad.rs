// Audited standalone: two functions acquire the same pair of locks in
// opposite orders — the classic AB/BA deadlock shape.
fn ab(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    drop((a, b));
}

fn ba(s: &Shared) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    drop((a, b));
}
