// Near-miss twin: writes go through a caller-provided sink; `println!`
// appears only in comment and string form.
use std::fmt::Write as _;

fn dump(total: u64, out: &mut String) {
    // A bare println! would panic on closed stdio.
    let _ = writeln!(out, "total = {total} (not via println! here)");
}
