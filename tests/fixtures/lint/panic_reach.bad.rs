// Audited with `entry` as the no-panic root: the unwrap two calls down
// the chain is reachable.
fn entry(x: Option<u32>) -> u32 {
    middle(x)
}

fn middle(x: Option<u32>) -> u32 {
    inner(x)
}

fn inner(x: Option<u32>) -> u32 {
    x.unwrap()
}
