// Near-miss twin: the hot chain reuses the caller's scratch buffer
// (`clone_from`); the allocating clone lives on an island no `_into`
// root can reach, so the pass stays silent.
fn task_stat_into(out: &mut TaskStat) {
    helper(out);
}

fn helper(out: &mut TaskStat) {
    out.comm.clone_from(&fresh.comm);
}

fn island(src: &TaskStat) -> TaskStat {
    src.clone()
}
