// Near-miss twin: the same byte-string and nested-comment shapes, but
// the only panic-family text lives inside literals and comments — a
// lexer that mis-ends either would report a phantom violation.
fn magic() -> &'static [u8] {
    b"header {{{ x.unwrap() \" not code"
}

fn raw_magic() -> &'static [u8] {
    br#"also } not " code .expect("#
}

/* outer /* inner x.unwrap() */ still comment } { */
fn real(x: u32) -> u32 {
    x
}
