// Near-miss twin: the buffer-reusing forms the hot path is built on.
fn retain(status: &TaskStatus, scratch: &mut Scratch) {
    scratch.comm.clone_from(&status.comm);
    scratch.cpus.extend(status.cpus_allowed.iter().cloned());
}
