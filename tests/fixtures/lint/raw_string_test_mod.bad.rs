fn banner() -> &'static str { r#"odd " quote {"# }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
fn after(x: Option<u32>) -> u32 { x.unwrap() }
