// Near-miss twin: ring-bounded allowlisted fields and per-round local
// scratch.
fn observe(&mut self, t_s: f64) {
    self.samples.push(t_s);
    let mut scratch = Vec::new();
    scratch.push(t_s);
    self.tracks.push(t_s);
}
