// Near-miss twin: both callers agree on alpha -> beta, so the order
// graph has an edge but no cycle.
fn ab(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    drop((a, b));
}

fn also_ab(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    drop((a, b));
}
