// Near-miss twin: the simulation takes its timestamp as an input and
// iterates a BTreeMap (sorted, replay-stable); the wall-clock read
// lives outside the root's reach.
fn run_sim(tasks: &BTreeMap<u32, Task>, t0: u64) {
    for (tid, task) in tasks.iter() {
        let _ = (tid, task, t0);
    }
}

fn outside() -> Instant {
    Instant::now()
}
