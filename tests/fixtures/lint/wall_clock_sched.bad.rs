// Linted as a crates/sched source: the scheduler substrate is a
// deterministic virtual-time simulation.
use std::time::{Instant, SystemTime};

fn stamp() -> Instant {
    Instant::now()
}

fn wall() -> SystemTime {
    SystemTime::now()
}
