// Audited standalone: the `_into` sampling root reaches a fresh
// allocation two calls down. The hot-path-alloc pass must flag `leaf`
// with the witness chain task_stat_into -> helper -> leaf.
fn task_stat_into(out: &mut TaskStat) {
    helper(out);
}

fn helper(out: &mut TaskStat) {
    leaf(out);
}

fn leaf(out: &mut TaskStat) {
    out.comm = fresh.comm.clone();
}
