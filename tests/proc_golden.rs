//! Golden-file tests for the `/proc` parsers: every fixture under
//! `tests/fixtures/` is a verbatim capture from a real Linux kernel
//! (`cp /proc/... tests/fixtures/...`), so these tests pin the parsers
//! to the actual on-disk format rather than hand-typed approximations.

use std::path::Path;
use zerosum_proc::parse::{
    parse_meminfo, parse_schedstat, parse_system_stat, parse_task_stat, parse_task_status,
};
use zerosum_proc::TaskState;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

#[test]
fn golden_proc_stat() {
    let stat = parse_system_stat(&fixture("proc_stat.txt")).expect("parse /proc/stat");
    // The capture machine had one online CPU; the aggregate row must
    // equal the per-CPU sum.
    assert_eq!(stat.cpus.len(), 1);
    assert_eq!(stat.cpus[0].0, 0);
    assert_eq!(stat.total.user, 80642);
    assert_eq!(stat.total.system, 6319);
    assert_eq!(stat.total.idle, 229482);
    assert_eq!(stat.total.iowait, 2217);
    assert_eq!(stat.total.steal, 691);
    assert_eq!(stat.cpus[0].1, stat.total);
    assert_eq!(stat.ctxt, 832451);
    assert_eq!(stat.processes, 15250);
}

#[test]
fn golden_proc_meminfo() {
    let mem = parse_meminfo(&fixture("proc_meminfo.txt")).expect("parse /proc/meminfo");
    assert_eq!(mem.mem_total_kib, 131993292);
    assert_eq!(mem.mem_free_kib, 128789108);
    assert_eq!(mem.mem_available_kib, 131378400);
    assert_eq!(mem.buffers_kib, 25184);
    assert_eq!(mem.cached_kib, 2741888);
    assert_eq!(mem.swap_total_kib, 0);
    assert_eq!(mem.swap_free_kib, 0);
    assert_eq!(mem.used_kib(), 131993292 - 131378400);
}

#[test]
fn golden_proc_pid_stat() {
    let line = fixture("proc_pid_stat.txt");
    let st = parse_task_stat(line.trim_end()).expect("parse /proc/pid/stat");
    assert_eq!(st.tid, 15252);
    assert_eq!(st.comm, "cp");
    assert_eq!(st.state, TaskState::Running);
    assert_eq!(st.minflt, 115);
    assert_eq!(st.majflt, 0);
    assert_eq!(st.utime, 0);
    assert_eq!(st.stime, 0);
    assert_eq!(st.nice, 0);
    assert_eq!(st.num_threads, 1);
    // Field 39 (processor) — NOT field 38, which is exit_signal (17 =
    // SIGCHLD here); the capture machine allowed only CPU 0.
    assert_eq!(st.processor, 0);
    assert_eq!(st.nswap, 0);
}

#[test]
fn golden_proc_pid_status() {
    let st = parse_task_status(&fixture("proc_pid_status.txt")).expect("parse /proc/pid/status");
    assert_eq!(st.name, "cp");
    assert_eq!(st.tid, 15253);
    assert_eq!(st.tgid, 15253);
    assert_eq!(st.state, TaskState::Running);
    assert_eq!(st.vm_rss_kib, 1840);
    assert!(st.vm_size_kib >= st.vm_rss_kib);
    assert!(st.cpus_allowed.contains(0));
    assert_eq!(st.cpus_allowed.count(), 1);
    assert_eq!(st.voluntary_ctxt_switches, 0);
    assert_eq!(st.nonvoluntary_ctxt_switches, 1);
}

#[test]
fn golden_proc_pid_schedstat() {
    let ss = parse_schedstat(&fixture("proc_pid_schedstat.txt")).expect("parse schedstat");
    assert_eq!(ss.run_ns, 0);
    assert_eq!(ss.wait_ns, 58210);
    assert_eq!(ss.timeslices, 1);
}

// --- Pathological captures (§3.1.1: the observation surface is hostile).
// `comm` is attacker-controlled via prctl(PR_SET_NAME) and may contain
// spaces, parentheses, even newlines; reads can race an exiting task and
// return truncated or zeroed content. The parsers must return data or
// `Err` — never panic, never mis-split on the wrong parenthesis.

#[test]
fn golden_proc_pid_stat_evil_comm() {
    let line = fixture("proc_pid_stat_evil_comm.txt");
    let st = parse_task_stat(line.trim_end()).expect("parse evil comm");
    assert_eq!(st.tid, 4242);
    // Everything between the first '(' and the *last* ')': spaces,
    // nested parens, and an embedded newline survive verbatim.
    assert_eq!(st.comm, "tmux: new-server ((o_o)\n !");
    assert_eq!(st.state, TaskState::Running);
    assert_eq!(st.minflt, 115);
    assert_eq!(st.utime, 0);
    assert_eq!(st.num_threads, 1);
    assert_eq!(st.processor, 0);
}

#[test]
fn golden_proc_pid_stat_truncated() {
    // A read racing task exit can return the line cut mid-field. That is
    // an error (`missing field`), not a panic and not zeroed garbage.
    let line = fixture("proc_pid_stat_truncated.txt");
    let err = parse_task_stat(line.trim_end()).expect_err("truncated stat must not parse");
    assert!(err.to_string().contains("field"), "{err}");
}

#[test]
fn golden_proc_pid_stat_zero() {
    // All-zero rows (e.g. kernel threads, or a tid observed in the first
    // jiffy of its life) are valid data, not an error.
    let line = fixture("proc_pid_stat_zero.txt");
    let st = parse_task_stat(line.trim_end()).expect("parse all-zero stat");
    assert_eq!(st.tid, 0);
    assert_eq!(st.comm, "swapper/0");
    assert_eq!(st.state, TaskState::Running);
    assert_eq!(st.minflt, 0);
    assert_eq!(st.utime, 0);
    assert_eq!(st.stime, 0);
    assert_eq!(st.nswap, 0);
    assert_eq!(st.processor, 0);
}
