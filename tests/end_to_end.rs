//! Cross-crate integration: the full monitoring pipeline over the
//! simulated Frontier node, exercised through the public facade.

use zerosum::prelude::*;
use zerosum_apps::{launch_miniqmc, MiniQmcConfig};
use zerosum_core::export;
use zerosum_omp::OmptRegistry;

fn full_pipeline(scale: u32, seed: u64) -> (Monitor, f64, Vec<u32>) {
    let topo = presets::frontier();
    let mut sim = NodeSim::new(
        topo.clone(),
        SchedParams {
            seed,
            ..Default::default()
        },
    );
    let mut qmc = MiniQmcConfig::frontier_cpu().scaled_down(scale);
    qmc.omp = zerosum_omp::OmpEnv::from_pairs([
        ("OMP_NUM_THREADS", "7"),
        ("OMP_PROC_BIND", "spread"),
        ("OMP_PLACES", "cores"),
    ])
    .unwrap();
    let mut ompt = OmptRegistry::new();
    let job = launch_miniqmc(&mut sim, &topo, &qmc, &mut ompt).expect("launch");
    let mut monitor = Monitor::new(ZeroSumConfig::scaled(scale));
    for team in &job.teams {
        monitor.watch_process(ProcessInfo {
            pid: team.pid,
            rank: sim.process(team.pid).and_then(|p| p.rank),
            hostname: sim.hostname().to_string(),
            gpus: vec![],
            cpus_allowed: sim
                .process(team.pid)
                .map(|p| p.cpus_allowed.clone())
                .unwrap_or_default(),
        });
        for &tid in &team.tids {
            monitor.register_omp_thread(team.pid, tid);
        }
    }
    attach_monitor_threads(&mut sim, &monitor);
    let out = run_monitored(&mut sim, &mut monitor, None, 3_600_000_000);
    assert!(out.completed, "pipeline run timed out");
    let pids = job.teams.iter().map(|t| t.pid).collect();
    (monitor, out.duration_s, pids)
}

#[test]
fn all_ranks_monitored_with_full_reports() {
    let (monitor, duration, pids) = full_pipeline(100, 1);
    assert_eq!(monitor.processes().len(), 8);
    for (rank, &pid) in pids.iter().enumerate() {
        let rep = render_process_report(&monitor, pid, duration, None);
        assert!(rep.contains(&format!("MPI {rank:03}")), "rank {rank}");
        assert!(rep.contains("Main, OpenMP"));
        assert!(rep.contains("ZeroSum"));
        // 9 LWPs per rank: main + 6 workers + helper + monitor.
        let lwp_lines = rep
            .lines()
            .filter(|l| l.starts_with("LWP ") && l.contains(" - stime:"))
            .count();
        assert_eq!(lwp_lines, 9, "rank {rank}:\n{rep}");
    }
    // The rank-0 summary lists the other seven ranks.
    let summary = render_summary(&monitor, duration, None);
    assert!(summary.contains("Other ranks:"));
    assert!(summary.matches("MPI 00").count() >= 8);
}

#[test]
fn disjoint_rank_masks_and_utilization_accounting() {
    let (monitor, _, pids) = full_pipeline(100, 2);
    // Rank masks are disjoint L3 regions.
    let masks: Vec<CpuSet> = pids
        .iter()
        .map(|&p| monitor.process(p).unwrap().cpus_allowed.clone())
        .collect();
    for i in 0..masks.len() {
        for j in (i + 1)..masks.len() {
            assert!(!masks[i].intersects(&masks[j]), "ranks {i} and {j} overlap");
        }
    }
    // Every bound core shows high utilization over the run.
    let watch = monitor.process(pids[0]).unwrap();
    for cpu in watch.cpus_allowed.iter() {
        let (idle, _sys, user) = monitor.hwt.overall(cpu).unwrap();
        assert!(user > 60.0, "cpu {cpu} user {user}");
        assert!(idle < 40.0, "cpu {cpu} idle {idle}");
    }
}

#[test]
fn csv_exports_are_consistent_with_tracks() {
    let (monitor, duration, pids) = full_pipeline(150, 3);
    let watch = monitor.process(pids[0]).unwrap();
    let csv = export::lwp_csv(watch);
    let header = csv.lines().next().unwrap();
    assert_eq!(
        header,
        "time,tid,type,state,utime,stime,minflt,majflt,nswap,processor,vcsw,nvcsw,wait_ns"
    );
    // Row count = sum of per-track sample counts.
    let expected: usize = watch.lwps.tracks().map(|t| t.samples.len()).sum();
    assert_eq!(csv.lines().count() - 1, expected);
    // Cumulative utime column is non-decreasing per tid.
    let mut last: std::collections::HashMap<&str, u64> = Default::default();
    for line in csv.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        let tid = cols[1];
        let utime: u64 = cols[4].parse().unwrap();
        if let Some(prev) = last.get(tid) {
            assert!(utime >= *prev, "utime regressed for tid {tid}");
        }
        last.insert(Box::leak(tid.to_string().into_boxed_str()), utime);
    }
    // Log files include report + CSVs.
    let dir = std::env::temp_dir().join(format!("zs-e2e-{}", std::process::id()));
    let paths = export::write_logs(&monitor, &dir, duration, |p| {
        render_process_report(&monitor, p, duration, None)
    })
    .unwrap();
    assert_eq!(paths.len(), 8);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluator_is_quiet_on_a_well_configured_job() {
    let (monitor, _, _) = full_pipeline(100, 4);
    let topo = presets::frontier();
    let findings = evaluate(&monitor, &topo);
    // A clean spread/cores run must not produce Critical findings.
    assert!(
        !findings.iter().any(|f| f.severity() == Severity::Critical),
        "unexpected critical findings: {findings:?}"
    );
}
