//! Integration of the §3.6 live-export feed with the virtual-time
//! runner: a steering-style consumer subscribes and receives a snapshot
//! per monitor sample while the simulated job runs.

use zerosum::prelude::*;
use zerosum_core::LwpKind;

#[test]
fn subscribers_receive_per_sample_snapshots() {
    let topo = presets::laptop_i7_1165g7();
    let mut sim = NodeSim::new(topo, SchedParams::default());
    let pid = sim.spawn_process(
        "app",
        CpuSet::from_indices([0u32, 1]),
        2_048,
        Behavior::FiniteCompute {
            remaining_us: 2_000_000,
            chunk_us: 10_000,
        },
    );
    sim.spawn_task(
        pid,
        "OpenMP",
        None,
        Behavior::FiniteCompute {
            remaining_us: 2_000_000,
            chunk_us: 10_000,
        },
        false,
    );
    let mut monitor = Monitor::new(ZeroSumConfig {
        period_us: 250_000,
        ..Default::default()
    });
    monitor.watch_process(ProcessInfo {
        pid,
        rank: Some(0),
        hostname: sim.hostname().to_string(),
        gpus: vec![],
        cpus_allowed: CpuSet::from_indices([0u32, 1]),
    });
    let rx = monitor.feed.subscribe(64);
    attach_monitor_threads(&mut sim, &monitor);
    let out = run_monitored(&mut sim, &mut monitor, None, 60_000_000);
    assert!(out.completed);
    let snaps: Vec<_> = rx.try_iter().collect();
    assert_eq!(snaps.len() as u64, out.samples, "one snapshot per sample");
    // Snapshots are ordered and cumulative counters are monotone.
    for w in snaps.windows(2) {
        assert!(w[1].t_s >= w[0].t_s);
        assert!(w[1].round == w[0].round + 1);
    }
    // A mid-run snapshot shows live application threads with CPU time —
    // exactly what a steering loop would consume.
    let mid = &snaps[snaps.len() / 2];
    assert_eq!(mid.processes.len(), 1);
    let p = &mid.processes[0];
    assert!(p.rss_kib > 0);
    let app_threads: Vec<_> = p
        .lwps
        .iter()
        .filter(|l| l.kind != LwpKind::ZeroSum)
        .collect();
    assert!(app_threads.len() >= 2);
    assert!(app_threads.iter().any(|l| l.utime > 0));
    // The monitor's own thread is visible too (it is an LWP like any
    // other — the paper's Listing 2 shows the ZeroSum row).
    assert!(p.lwps.iter().any(|l| l.kind == LwpKind::ZeroSum));
    // No drops with a roomy buffer.
    assert_eq!(monitor.feed.dropped, 0);
}

#[test]
fn slow_consumer_never_stalls_the_monitor() {
    let topo = presets::laptop_i7_1165g7();
    let mut sim = NodeSim::new(topo, SchedParams::default());
    let pid = sim.spawn_process(
        "app",
        CpuSet::single(0),
        64,
        Behavior::FiniteCompute {
            remaining_us: 2_000_000,
            chunk_us: 10_000,
        },
    );
    let mut monitor = Monitor::new(ZeroSumConfig {
        period_us: 100_000,
        ..Default::default()
    });
    monitor.watch_process(ProcessInfo {
        pid,
        rank: None,
        hostname: sim.hostname().to_string(),
        gpus: vec![],
        cpus_allowed: CpuSet::single(0),
    });
    // A consumer that never reads, with a 1-slot buffer.
    let rx = monitor.feed.subscribe(1);
    let out = run_monitored(&mut sim, &mut monitor, None, 60_000_000);
    assert!(out.completed);
    assert!(out.samples > 3);
    // Exactly one snapshot buffered; the rest were dropped, not blocked on.
    assert_eq!(rx.try_iter().count(), 1);
    assert_eq!(monitor.feed.dropped, out.samples - 1);
}
