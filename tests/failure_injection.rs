//! Failure-injection integration tests: the §2 scenarios ZeroSum exists
//! to catch — deadlocks, memory exhaustion (own vs foreign), vanishing
//! processes — must surface through the monitoring pipeline.

use zerosum::prelude::*;
use zerosum_apps::{spawn_synthetic, Role, SyntheticProcess};
use zerosum_core::memory::MemPressureSource;

fn watch(sim: &NodeSim, monitor: &mut Monitor, pid: u32) {
    monitor.watch_process(ProcessInfo {
        pid,
        rank: None,
        hostname: sim.hostname().to_string(),
        gpus: vec![],
        cpus_allowed: sim
            .process(pid)
            .map(|p| p.cpus_allowed.clone())
            .unwrap_or_default(),
    });
}

#[test]
fn deadlocked_team_is_flagged_then_finished_apps_are_not() {
    let topo = presets::laptop_i7_1165g7();
    let mut sim = NodeSim::new(
        topo,
        SchedParams {
            barrier_spin_us: 2_000,
            ..Default::default()
        },
    );
    let worker = || {
        Behavior::worker(WorkerSpec {
            barrier: Some(1),
            ..WorkerSpec::cpu_bound(100, 5_000)
        })
    };
    let pid = sim.spawn_process("dl", CpuSet::range(0, 3), 1024, worker());
    sim.spawn_task(pid, "OpenMP", None, worker(), false);
    sim.register_barrier_member(pid, 1); // the member that never comes
    let mut monitor = Monitor::new(ZeroSumConfig {
        period_us: 100_000,
        deadlock_windows: 3,
        ..Default::default()
    });
    watch(&sim, &mut monitor, pid);
    attach_monitor_threads(&mut sim, &monitor);
    let out = run_monitored(&mut sim, &mut monitor, None, 5_000_000);
    assert!(!out.completed);
    assert!(
        matches!(out.liveness.last(), Some(Liveness::PossibleDeadlock { .. })),
        "liveness tail: {:?}",
        &out.liveness[out.liveness.len().saturating_sub(3)..]
    );
    // The deadlock verdict must come only after the stall threshold:
    // with deadlock_windows = 3, the third stalled assessment (index 2)
    // is the earliest legal verdict.
    let first_deadlock = out
        .liveness
        .iter()
        .position(|l| matches!(l, Liveness::PossibleDeadlock { .. }))
        .unwrap();
    assert!(first_deadlock >= 2, "deadlock at sample {first_deadlock}");
}

#[test]
fn external_memory_pressure_is_attributed_to_the_system() {
    let topo = presets::laptop_i7_1165g7(); // 16 GiB node
    let mut sim = NodeSim::new(topo, SchedParams::default());
    let (pid, _) = spawn_synthetic(
        &mut sim,
        &SyntheticProcess {
            name: "modest".into(),
            mask: CpuSet::single(0),
            rss_kib: 100 * 1024, // 100 MiB — clearly not the culprit
            extra_threads: vec![],
            main: Role::Hog {
                total_us: 10_000_000,
            },
        },
    );
    // A noisy neighbour eats almost all memory.
    sim.memory.external_kib = 15 * 1024 * 1024;
    let mut monitor = Monitor::new(ZeroSumConfig {
        period_us: 200_000,
        ..Default::default()
    });
    watch(&sim, &mut monitor, pid);
    let out = run_monitored(&mut sim, &mut monitor, None, 3_000_000);
    assert!(!out.completed);
    assert_eq!(monitor.mem.pressure(), MemPressureSource::External);
    let findings = evaluate(&monitor, &presets::laptop_i7_1165g7());
    let mem = findings
        .iter()
        .find(|f| matches!(f, Finding::MemoryPressure { .. }))
        .expect("memory finding");
    assert!(mem.explain().contains("OUTSIDE this job"));
}

#[test]
fn application_memory_pressure_is_attributed_to_the_app() {
    let topo = presets::laptop_i7_1165g7();
    let mut sim = NodeSim::new(topo, SchedParams::default());
    let (pid, _) = spawn_synthetic(
        &mut sim,
        &SyntheticProcess {
            name: "fat".into(),
            mask: CpuSet::single(0),
            rss_kib: 15 * 1024 * 1024, // 15 GiB of 16
            extra_threads: vec![],
            main: Role::Hog {
                total_us: 10_000_000,
            },
        },
    );
    let mut monitor = Monitor::new(ZeroSumConfig {
        period_us: 200_000,
        ..Default::default()
    });
    watch(&sim, &mut monitor, pid);
    let _ = run_monitored(&mut sim, &mut monitor, None, 3_000_000);
    assert_eq!(monitor.mem.pressure(), MemPressureSource::Application);
}

#[test]
fn monitor_survives_watching_nonexistent_and_mixed_processes() {
    let topo = presets::laptop_i7_1165g7();
    let mut sim = NodeSim::new(topo, SchedParams::default());
    let (alive, _) = spawn_synthetic(
        &mut sim,
        &SyntheticProcess {
            name: "ok".into(),
            mask: CpuSet::single(1),
            rss_kib: 512,
            extra_threads: vec![],
            main: Role::Hog { total_us: 800_000 },
        },
    );
    let mut monitor = Monitor::new(ZeroSumConfig {
        period_us: 100_000,
        ..Default::default()
    });
    watch(&sim, &mut monitor, alive);
    monitor.watch_process(ProcessInfo {
        pid: 55_555,
        rank: None,
        hostname: "ghost".into(),
        gpus: vec![],
        cpus_allowed: Default::default(),
    });
    let out = run_monitored(&mut sim, &mut monitor, None, 5_000_000);
    assert!(out.completed);
    assert!(monitor.process(55_555).unwrap().gone);
    assert_eq!(monitor.stats.errors, 0, "ghost pid must not count as error");
    // The live process was fully tracked regardless.
    let w = monitor.process(alive).unwrap();
    assert!(!w.lwps.is_empty());
    assert!(w.lwps.track(alive).unwrap().cpu_fraction() > 0.5);
}

#[test]
fn crash_reporting_formats_for_mpi_ranks() {
    use zerosum_core::signal::{crash_report, AbnormalExit};
    let rep = crash_report(AbnormalExit::SegmentationViolation, 777, Some(12));
    assert!(rep.contains("SIGSEGV"));
    assert!(rep.contains("MPI 012 - PID 777"));
}
