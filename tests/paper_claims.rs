//! The paper's headline claims, asserted end-to-end at reduced scale.
//!
//! Each test names the artifact it guards. These run the same harnesses
//! as the `zerosum-experiments` binaries (which default to larger
//! workloads) — see EXPERIMENTS.md for full-scale paper-vs-measured
//! numbers.

use zerosum_apps::PicConfig;
use zerosum_experiments::figures::{fig5, fig67, fig8};
use zerosum_experiments::listings::{listing1, listing2};
use zerosum_experiments::tables::{run_table, TableConfig};

#[test]
fn listing1_topology_output_is_byte_exact() {
    let expected = "\
HWLOC Node topology:
Machine L#0
  Package L#0
    L3Cache L#0 12MB
      L2Cache L#0 1280KB
        L1Cache L#0 48KB
          Core L#0
            PU L#0 P#0
            PU L#1 P#4
      L2Cache L#1 1280KB
        L1Cache L#1 48KB
          Core L#1
            PU L#2 P#1
            PU L#3 P#5
      L2Cache L#2 1280KB
        L1Cache L#2 48KB
          Core L#2
            PU L#4 P#2
            PU L#5 P#6
      L2Cache L#3 1280KB
        L1Cache L#3 48KB
          Core L#3
            PU L#6 P#3
            PU L#7 P#7
";
    assert_eq!(listing1(), expected);
}

#[test]
fn tables_1_2_3_reproduce_the_contention_story() {
    let t1 = run_table(TableConfig::Table1, 140, 10);
    let t2 = run_table(TableConfig::Table2, 140, 10);
    let t3 = run_table(TableConfig::Table3, 140, 10);
    let team_nvctx = |t: &zerosum_experiments::tables::TableRun| -> u64 {
        t.rows
            .iter()
            .filter(|r| r.label.contains("OpenMP"))
            .map(|r| r.nvctx)
            .sum()
    };
    // Table 1: default config oversubscribes one core → runtime blow-up
    // and context-switch storm.
    assert!(t1.duration_s > 2.0 * t2.duration_s);
    assert!(team_nvctx(&t1) > 20 * team_nvctx(&t2).max(1));
    // Table 2 vs 3: same runtime ballpark; binding removes migrations.
    assert!((t3.duration_s / t2.duration_s - 1.0).abs() < 0.25);
    assert_eq!(t3.team_migrations, 0);
    // Table 1's affinity column shows every team thread on core 1.
    assert!(t1
        .rows
        .iter()
        .filter(|r| r.label.contains("OpenMP"))
        .all(|r| r.cpus == "1"));
}

#[test]
fn listing2_gpu_report_has_the_min_avg_max_block() {
    let run = listing2(100, 10);
    assert!(run.report.contains("GPU 0 - (metric:  min  avg  max)"));
    for row in [
        "Clock Frequency, GLX (MHz)",
        "Device Busy %",
        "Power Average (W)",
        "Temperature (C)",
        "Used VRAM Bytes",
        "Voltage (mV)",
    ] {
        assert!(run.report.contains(row), "missing {row}");
    }
    assert!(run.gpu_busy_avg > 0.5);
}

#[test]
fn figure5_heatmap_is_nearest_neighbor_dominated() {
    let mut cfg = PicConfig::figure5();
    cfg.ranks = 128;
    cfg.steps = 50;
    let run = fig5(&cfg);
    assert!(run.diagonal_fraction > 0.98, "{}", run.diagonal_fraction);
    assert!(run.max_pair_bytes >= 50 * 17_500_000);
}

#[test]
fn figures_6_and_7_series_cover_the_run() {
    let run = fig67(140, 10);
    assert!(run.samples >= 3);
    // LWP series includes every column §3.6 lists.
    let header = run.lwp_csv.lines().next().unwrap();
    for col in ["state", "minflt", "majflt", "nswap", "processor"] {
        assert!(header.contains(col), "missing column {col}");
    }
    // Per-HWT rows exist for all 128 HWTs of the node.
    let cpus: std::collections::HashSet<&str> = run
        .hwt_csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(1).unwrap())
        .collect();
    assert_eq!(cpus.len(), 128);
}

#[test]
fn figure8_overhead_story_holds() {
    let one = fig8(false, 6, 80, 30);
    let two = fig8(true, 6, 80, 31);
    let p1 = one.ttest.expect("1tpc t-test").p_value;
    let p2 = two.ttest.expect("2tpc t-test").p_value;
    assert!(p1 > 0.05, "1tpc should be indistinguishable, p={p1}");
    assert!(p2 < 0.05, "2tpc should be significant, p={p2}");
    assert!(two.overhead_frac > 0.0 && two.overhead_frac < 0.02);
}
