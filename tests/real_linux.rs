//! Integration against the real Linux `/proc` of the test machine: the
//! monitor must work unmodified on a live system (the paper's actual
//! deployment mode), not only against the simulation.

use std::time::{Duration, Instant};
use zerosum::prelude::*;

fn spin(ms: u64) {
    let mut acc = 1u64;
    let until = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < until {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
    }
    std::hint::black_box(acc);
}

#[test]
fn live_self_monitoring_produces_a_full_report() {
    let cfg = ZeroSumConfig {
        period_us: 50_000,
        signal_handler: false,
        ..Default::default()
    };
    let session = SelfMonitor::start(cfg, Some(0)).expect("attach");
    let threads: Vec<_> = (0..2)
        .map(|_| {
            std::thread::Builder::new()
                .name("OpenMP".to_string())
                .spawn(|| spin(250))
                .unwrap()
        })
        .collect();
    spin(250);
    for t in threads {
        t.join().unwrap();
    }
    let (monitor, duration) = session.stop();
    assert!(monitor.stats.rounds >= 4);
    let pid = monitor.processes()[0].info.pid;
    let report = render_process_report(&monitor, pid, duration, None);
    // All sections present with live data.
    assert!(report.contains("Duration of execution:"));
    assert!(report.contains("MPI 000 - PID"));
    assert!(report.contains("LWP (thread) Summary:"));
    assert!(report.contains("Hardware Summary:"));
    // The worker threads were discovered via /proc/<pid>/task and
    // classified by name.
    let w = monitor.process(pid).unwrap();
    let omp = w
        .lwps
        .tracks()
        .filter(|t| t.kind == zerosum_core::LwpKind::OpenMp)
        .count();
    assert!(omp >= 2, "found {omp} OpenMP threads");
    // Some thread of this process burned real CPU (under `cargo test`
    // the work happens on a test-runner thread, not the main thread).
    let max_frac = w
        .lwps
        .tracks()
        .map(|t| t.cpu_fraction())
        .fold(0.0f64, f64::max);
    assert!(max_frac > 0.2, "max cpu fraction {max_frac}");
}

#[test]
fn live_contention_analysis_runs() {
    let cfg = ZeroSumConfig {
        period_us: 40_000,
        signal_handler: false,
        ..Default::default()
    };
    let session = SelfMonitor::start(cfg, None).expect("attach");
    spin(200);
    let (monitor, _) = session.stop();
    let pid = monitor.processes()[0].info.pid;
    let rep = analyze(&monitor, pid).expect("contention report");
    // At least one thread is busy; the analysis must classify it so.
    assert!(
        rep.lwps.iter().any(|l| l.busy),
        "no busy rows: {:?}",
        rep.lwps
    );
    let rendered = rep.render();
    assert!(rendered.contains("Contention Summary:"));
}

#[test]
fn live_procfs_reads_are_self_consistent() {
    let src = LinuxProc::new();
    let pid = src.self_pid().unwrap();
    let stat = src.system_stat().unwrap();
    let ncpu = stat.cpus.len();
    assert!(ncpu >= 1);
    // Our own affinity mask fits within the machine's CPU set.
    let st = src.process_status(pid).unwrap();
    assert!(st.cpus_allowed.count() <= ncpu + 64); // offline CPUs tolerated
                                                   // Task list contains at least this thread; per-task reads agree on
                                                   // the tgid.
    for tid in src.list_tasks(pid).unwrap().into_iter().take(4) {
        let ts = src.task_status(pid, tid).unwrap();
        assert_eq!(ts.tgid, pid);
    }
}
